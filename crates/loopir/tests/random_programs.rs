//! Property tests over randomly generated loop-nest programs: the
//! interpreter must stay in bounds, trace sizes must match trip-count
//! arithmetic, the analysis must be deterministic and total, and CALL
//! kills must clear exactly the bodies that contain them.
//!
//! Offline build: programs are generated with the in-tree
//! [`SplitMix64`] generator instead of `proptest`; each property runs
//! over `CASES` seeds and failures report the offending seed.

use sac_loopir::{aff, AffineExpr, Program, Tags, TraceOptions};
use sac_trace::rng::SplitMix64;

const CASES: u64 = 128;

/// Description of one generated loop level.
#[derive(Debug, Clone)]
struct LoopSpec {
    trip: i64,
    /// References directly in this loop's body: per ref, the coefficient
    /// on each enclosing loop level (including this one) and a write flag.
    refs: Vec<(Vec<i64>, bool)>,
    has_call: bool,
    child: Option<Box<LoopSpec>>,
}

fn gen_ref(rng: &mut SplitMix64, depth: usize) -> (Vec<i64>, bool) {
    let coefs = (0..depth).map(|_| rng.range_i64(-2, 2)).collect();
    (coefs, rng.chance(0.5))
}

fn gen_spec(rng: &mut SplitMix64, depth: usize) -> LoopSpec {
    let max_refs = if depth >= 2 { 4 } else { 3 };
    let spec = LoopSpec {
        trip: rng.range_i64(1, 5),
        refs: (0..rng.index(max_refs))
            .map(|_| gen_ref(rng, depth + 1))
            .collect(),
        has_call: rng.chance(0.2),
        child: None,
    };
    if depth >= 2 || rng.chance(0.5) {
        spec
    } else {
        LoopSpec {
            child: Some(Box::new(gen_spec(rng, depth + 1))),
            ..spec
        }
    }
}

/// Builds a program from a spec; returns (program, expected trace length,
/// killed-flag per RefId order).
fn build(spec: &LoopSpec) -> (Program, usize, Vec<bool>) {
    let mut p = Program::new("random");
    // Declare enough loop variables up front.
    let vars: Vec<_> = (0..3).map(|i| p.var(format!("v{i}"))).collect();

    // Each reference gets its own array, sized to cover the subscript
    // range: coefficients lie in [-2,2], at most 3 enclosing loops with
    // values < 5, so subscripts span [-24, 24] around the offset 24 and
    // an extent of 64 always suffices.
    let mut arrays = Vec::new();
    let mut count_refs = 0;
    let mut walk = Some(spec);
    while let Some(s) = walk {
        count_refs += s.refs.len();
        walk = s.child.as_deref();
    }
    for i in 0..count_refs {
        arrays.push(p.array(format!("A{i}"), &[64]));
    }

    let mut expected = 0usize;
    let mut killed = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn emit(
        s: &LoopSpec,
        depth: usize,
        vars: &[sac_loopir::VarId],
        arrays: &[sac_loopir::ArrayId],
        next_array: &mut usize,
        iter_mult: i64,
        expected: &mut usize,
        killed: &mut Vec<bool>,
        killed_here: bool,
        b: &mut sac_loopir::BodyBuilder,
    ) {
        let mult = iter_mult * s.trip;
        let killed_now = killed_here || s.has_call;
        b.for_(vars[depth], 0, s.trip, |b| {
            for (coefs, write) in &s.refs {
                let terms: Vec<(sac_loopir::VarId, i64)> = coefs
                    .iter()
                    .enumerate()
                    .take(depth + 1)
                    .map(|(d, &c)| (vars[d], c))
                    .collect();
                let e: AffineExpr = aff(&terms, 24);
                let arr = arrays[*next_array];
                *next_array += 1;
                if *write {
                    b.write(arr, &[e]);
                } else {
                    b.read(arr, &[e]);
                }
                killed.push(killed_now);
            }
            if s.has_call {
                b.call();
            }
            if let Some(child) = &s.child {
                emit(
                    child,
                    depth + 1,
                    vars,
                    arrays,
                    next_array,
                    mult,
                    expected,
                    killed,
                    killed_now,
                    b,
                );
            }
        });
        *expected += (s.refs.len() as i64 * mult) as usize;
    }

    let mut next_array = 0;
    p.body(|b| {
        emit(
            spec,
            0,
            &vars,
            &arrays,
            &mut next_array,
            1,
            &mut expected,
            &mut killed,
            false,
            b,
        );
    });
    (p, expected, killed)
}

/// Runs `f` over `CASES` generated specs, naming the seed on failure.
fn for_each_spec(f: impl Fn(&LoopSpec)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x100F + case);
        let spec = gen_spec(&mut rng, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&spec)));
        if let Err(e) = result {
            eprintln!("failing case {case}: {spec:?}");
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn random_programs_trace_in_bounds() {
    for_each_spec(|spec| {
        let (p, expected, _) = build(spec);
        let t = p
            .trace(&TraceOptions {
                seed: 1,
                gaps: false,
                levels: false,
            })
            .expect("subscripts stay in bounds by construction");
        assert_eq!(t.len(), expected);
    });
}

#[test]
fn analysis_is_total_and_deterministic() {
    for_each_spec(|spec| {
        let (p, _, _) = build(spec);
        let a = p.analyze();
        let b = p.analyze();
        assert_eq!(a.len() as u32, p.ref_count());
        assert_eq!(a, b);
    });
}

#[test]
fn call_kills_exactly_the_enclosing_bodies() {
    for_each_spec(|spec| {
        let (p, _, killed) = build(spec);
        let tags = p.analyze();
        for (t, k) in tags.iter().zip(&killed) {
            if *k {
                assert_eq!(*t, Tags::NONE);
            }
        }
    });
}

#[test]
fn levels_are_within_the_two_bit_budget() {
    for_each_spec(|spec| {
        let (p, _, _) = build(spec);
        let t = p
            .trace(&TraceOptions {
                seed: 1,
                gaps: false,
                levels: true,
            })
            .expect("traces");
        for a in &t {
            assert!(a.spatial_level() <= 3);
            if !a.spatial() {
                assert_eq!(a.spatial_level(), 0, "levels only on spatial refs");
            }
        }
    });
}

#[test]
fn pseudocode_mentions_every_array() {
    for_each_spec(|spec| {
        let (p, _, _) = build(spec);
        let text = p.to_pseudocode();
        for a in p.arrays() {
            assert!(text.contains(a.name()));
        }
    });
}

#[test]
fn traces_round_trip_through_binary_io() {
    for_each_spec(|spec| {
        let (p, _, _) = build(spec);
        let t = p
            .trace(&TraceOptions {
                seed: 5,
                gaps: true,
                levels: true,
            })
            .expect("traces");
        let mut buf = Vec::new();
        sac_trace::io::write_binary(&t, &mut buf).expect("write");
        let back = sac_trace::io::read_binary(&buf[..]).expect("read");
        assert_eq!(t, back);
    });
}
