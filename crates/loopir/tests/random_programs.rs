//! Property tests over randomly generated loop-nest programs: the
//! interpreter must stay in bounds, trace sizes must match trip-count
//! arithmetic, the analysis must be deterministic and total, and CALL
//! kills must clear exactly the bodies that contain them.

use proptest::prelude::*;
use sac_loopir::{aff, AffineExpr, Program, Tags, TraceOptions};

/// Description of one generated loop level.
#[derive(Debug, Clone)]
struct LoopSpec {
    trip: i64,
    /// References directly in this loop's body: per ref, the coefficient
    /// on each enclosing loop level (including this one) and a write flag.
    refs: Vec<(Vec<i64>, bool)>,
    has_call: bool,
    child: Option<Box<LoopSpec>>,
}

fn ref_strategy(depth: usize) -> impl Strategy<Value = (Vec<i64>, bool)> {
    (prop::collection::vec(-2i64..=2, depth), any::<bool>())
}

fn loop_spec(depth: usize) -> BoxedStrategy<LoopSpec> {
    let leaf = (
        1i64..6,
        prop::collection::vec(ref_strategy(depth + 1), 0..4),
        prop::bool::weighted(0.2),
    )
        .prop_map(|(trip, refs, has_call)| LoopSpec {
            trip,
            refs,
            has_call,
            child: None,
        });
    if depth >= 2 {
        return leaf.boxed();
    }
    (
        1i64..6,
        prop::collection::vec(ref_strategy(depth + 1), 0..3),
        prop::bool::weighted(0.2),
        prop::option::of(loop_spec(depth + 1)),
    )
        .prop_map(|(trip, refs, has_call, child)| LoopSpec {
            trip,
            refs,
            has_call,
            child: child.map(Box::new),
        })
        .boxed()
}

/// Builds a program from a spec; returns (program, expected trace length,
/// killed-flag per RefId order).
fn build(spec: &LoopSpec) -> (Program, usize, Vec<bool>) {
    let mut p = Program::new("random");
    // Declare enough loop variables up front.
    let vars: Vec<_> = (0..3).map(|i| p.var(format!("v{i}"))).collect();

    // Each reference gets its own array, sized to cover the subscript
    // range: coefficients lie in [-2,2], at most 3 enclosing loops with
    // values < 5, so subscripts span [-24, 24] around the offset 24 and
    // an extent of 64 always suffices.
    let mut arrays = Vec::new();
    let mut count_refs = 0;
    let mut walk = Some(spec);
    while let Some(s) = walk {
        count_refs += s.refs.len();
        walk = s.child.as_deref();
    }
    for i in 0..count_refs {
        arrays.push(p.array(format!("A{i}"), &[64]));
    }

    let mut expected = 0usize;
    let mut killed = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn emit(
        s: &LoopSpec,
        depth: usize,
        vars: &[sac_loopir::VarId],
        arrays: &[sac_loopir::ArrayId],
        next_array: &mut usize,
        iter_mult: i64,
        expected: &mut usize,
        killed: &mut Vec<bool>,
        killed_here: bool,
        b: &mut sac_loopir::BodyBuilder,
    ) {
        let mult = iter_mult * s.trip;
        let killed_now = killed_here || s.has_call;
        b.for_(vars[depth], 0, s.trip, |b| {
            for (coefs, write) in &s.refs {
                let terms: Vec<(sac_loopir::VarId, i64)> = coefs
                    .iter()
                    .enumerate()
                    .take(depth + 1)
                    .map(|(d, &c)| (vars[d], c))
                    .collect();
                let e: AffineExpr = aff(&terms, 24);
                let arr = arrays[*next_array];
                *next_array += 1;
                if *write {
                    b.write(arr, &[e]);
                } else {
                    b.read(arr, &[e]);
                }
                killed.push(killed_now);
            }
            if s.has_call {
                b.call();
            }
            if let Some(child) = &s.child {
                emit(
                    child,
                    depth + 1,
                    vars,
                    arrays,
                    next_array,
                    mult,
                    expected,
                    killed,
                    killed_now,
                    b,
                );
            }
        });
        *expected += (s.refs.len() as i64 * mult) as usize;
    }

    let mut next_array = 0;
    p.body(|b| {
        emit(
            spec,
            0,
            &vars,
            &arrays,
            &mut next_array,
            1,
            &mut expected,
            &mut killed,
            false,
            b,
        );
    });
    (p, expected, killed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_programs_trace_in_bounds(spec in loop_spec(0)) {
        let (p, expected, _) = build(&spec);
        let t = p
            .trace(&TraceOptions { seed: 1, gaps: false, levels: false })
            .expect("subscripts stay in bounds by construction");
        prop_assert_eq!(t.len(), expected);
    }

    #[test]
    fn analysis_is_total_and_deterministic(spec in loop_spec(0)) {
        let (p, _, _) = build(&spec);
        let a = p.analyze();
        let b = p.analyze();
        prop_assert_eq!(a.len() as u32, p.ref_count());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn call_kills_exactly_the_enclosing_bodies(spec in loop_spec(0)) {
        let (p, _, killed) = build(&spec);
        let tags = p.analyze();
        for (t, k) in tags.iter().zip(&killed) {
            if *k {
                prop_assert_eq!(*t, Tags::NONE);
            }
        }
    }

    #[test]
    fn levels_are_within_the_two_bit_budget(spec in loop_spec(0)) {
        let (p, _, _) = build(&spec);
        let t = p
            .trace(&TraceOptions { seed: 1, gaps: false, levels: true })
            .expect("traces");
        for a in &t {
            prop_assert!(a.spatial_level() <= 3);
            if !a.spatial() {
                prop_assert_eq!(a.spatial_level(), 0, "levels only on spatial refs");
            }
        }
    }

    #[test]
    fn pseudocode_mentions_every_array(spec in loop_spec(0)) {
        let (p, _, _) = build(&spec);
        let text = p.to_pseudocode();
        for a in p.arrays() {
            prop_assert!(text.contains(a.name()));
        }
    }

    #[test]
    fn traces_round_trip_through_binary_io(spec in loop_spec(0)) {
        let (p, _, _) = build(&spec);
        let t = p
            .trace(&TraceOptions { seed: 5, gaps: true, levels: true })
            .expect("traces");
        let mut buf = Vec::new();
        sac_trace::io::write_binary(&t, &mut buf).expect("write");
        let back = sac_trace::io::read_binary(&buf[..]).expect("read");
        prop_assert_eq!(t, back);
    }
}
