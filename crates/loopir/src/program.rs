//! The loop-nest program representation and its builder.

use crate::expr::{AffineExpr, VarId};
use sac_trace::AccessKind;
use std::fmt;

/// Identifier of an array declared in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub(crate) usize);

/// Identifier of a host-side integer table (index vectors, row pointers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub(crate) usize);

/// Identifier of a static reference (one load/store site). Doubles as the
/// instruction id recorded in trace entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefId(pub(crate) u32);

impl RefId {
    /// The reference's index in program order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An array declaration: column-major, 8-byte elements, explicit base
/// address. The first dimension varies fastest, as in Fortran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    name: String,
    base: u64,
    dims: Vec<i64>,
}

impl ArrayDecl {
    /// The array's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The array's base byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The array's extents, first dimension fastest-varying.
    pub fn dims(&self) -> &[i64] {
        &self.dims
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.dims.iter().product::<i64>() as u64 * sac_trace::WORD_BYTES
    }
}

/// One subscript of a reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subscript {
    /// An affine function of the loop variables.
    Affine(AffineExpr),
    /// An indirect subscript: the value of `table[index]` (e.g.
    /// `X(Index(j2))` in the sparse matrix-vector kernel). Indirect
    /// subscripts defeat the compile-time analysis; the paper handles them
    /// with user directives.
    Indirect {
        /// The host-side integer table being read.
        table: TableId,
        /// The position read from the table, affine in the loop variables.
        index: AffineExpr,
    },
}

impl From<AffineExpr> for Subscript {
    fn from(e: AffineExpr) -> Self {
        Subscript::Affine(e)
    }
}

impl From<VarId> for Subscript {
    fn from(v: VarId) -> Self {
        Subscript::Affine(AffineExpr::var(v))
    }
}

/// A loop bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// An affine function of enclosing loop variables (constants included).
    Affine(AffineExpr),
    /// The value of `table[index]` — used for data-dependent bounds such as
    /// the CSR row pointers `D(j1)` / `D(j1+1)` of the sparse kernel.
    Table {
        /// The host-side integer table holding the bound.
        table: TableId,
        /// The position read from the table.
        index: AffineExpr,
    },
}

impl From<i64> for Bound {
    fn from(k: i64) -> Self {
        Bound::Affine(AffineExpr::constant(k))
    }
}

impl From<AffineExpr> for Bound {
    fn from(e: AffineExpr) -> Self {
        Bound::Affine(e)
    }
}

impl From<VarId> for Bound {
    fn from(v: VarId) -> Self {
        Bound::Affine(AffineExpr::var(v))
    }
}

/// A static reference site (one load or store in the source).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefStmt {
    pub(crate) id: RefId,
    pub(crate) array: ArrayId,
    pub(crate) subs: Vec<Subscript>,
    pub(crate) kind: AccessKind,
    /// User-directive override of the computed tags (`(temporal, spatial)`).
    pub(crate) force_tags: Option<(bool, bool)>,
}

impl RefStmt {
    /// The reference id (program order).
    pub fn id(&self) -> RefId {
        self.id
    }

    /// The referenced array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// The subscripts, first dimension first.
    pub fn subscripts(&self) -> &[Subscript] {
        &self.subs
    }

    /// Load or store.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    /// The user-directive tag override, if any.
    pub fn forced_tags(&self) -> Option<(bool, bool)> {
        self.force_tags
    }
}

/// A statement of the loop nest.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `DO var = lo, hi-1, step` (half-open upper bound).
    For {
        /// The loop variable.
        var: VarId,
        /// Lower bound (inclusive).
        lo: Bound,
        /// Upper bound (exclusive).
        hi: Bound,
        /// Step; must be non-zero. Negative steps iterate downward while
        /// the value stays *greater* than `hi`.
        step: i64,
        /// A *driver* loop: iterated by the tracer but invisible to the
        /// locality analysis. Models a time-step or phase loop whose body
        /// is a subroutine call in the original program — the compiler
        /// analyzes each invocation's nests without seeing the outer
        /// repetition, so no temporal invariance is derived from it.
        opaque: bool,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// A memory reference.
    Ref(RefStmt),
    /// A `CALL` statement: the paper's analysis clears every tag in the
    /// enclosing loop (no interprocedural analysis).
    Call,
}

/// A complete loop-nest program: arrays, tables, and a statement tree.
///
/// See the crate-level example for typical construction.
#[derive(Debug, Clone, Default)]
pub struct Program {
    name: String,
    vars: Vec<String>,
    arrays: Vec<ArrayDecl>,
    tables: Vec<Vec<i64>>,
    body: Vec<Stmt>,
    next_base: u64,
    ref_count: u32,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            ..Program::default()
        }
    }

    /// The program name (also used as the trace name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a loop variable.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        self.vars.push(name.into());
        VarId(self.vars.len() - 1)
    }

    /// Declares a column-major array of doubles and assigns the next free
    /// base address (arrays are packed back to back, as in a Fortran
    /// common block, so mapping conflicts between arrays are realistic).
    ///
    /// # Panics
    ///
    /// Panics if any extent is non-positive.
    pub fn array(&mut self, name: impl Into<String>, dims: &[i64]) -> ArrayId {
        let base = self.next_base;
        self.array_at(name, dims, base)
    }

    /// Declares an array at an explicit base address (for controlled
    /// interference experiments such as the leading-dimension sweep of
    /// Figure 11b).
    ///
    /// # Panics
    ///
    /// Panics if any extent is non-positive.
    pub fn array_at(&mut self, name: impl Into<String>, dims: &[i64], base: u64) -> ArrayId {
        assert!(
            !dims.is_empty() && dims.iter().all(|&d| d > 0),
            "array extents must be positive"
        );
        let decl = ArrayDecl {
            name: name.into(),
            base,
            dims: dims.to_vec(),
        };
        let end = base + decl.size_bytes();
        self.next_base = self.next_base.max(end);
        self.arrays.push(decl);
        ArrayId(self.arrays.len() - 1)
    }

    /// Registers a host-side integer table (index vectors, row pointers).
    pub fn table(&mut self, values: Vec<i64>) -> TableId {
        self.tables.push(values);
        TableId(self.tables.len() - 1)
    }

    /// Builds the program body with a [`BodyBuilder`].
    ///
    /// Calling `body` again replaces the previous body and renumbers
    /// references from zero.
    pub fn body(&mut self, f: impl FnOnce(&mut BodyBuilder)) {
        let mut b = BodyBuilder {
            stmts: Vec::new(),
            next_ref: 0,
        };
        f(&mut b);
        self.body = b.stmts;
        self.ref_count = b.next_ref;
    }

    /// The statement tree.
    pub fn stmts(&self) -> &[Stmt] {
        &self.body
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Looks up an array declaration.
    pub fn array_decl(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Borrows a host table.
    pub fn table_values(&self, id: TableId) -> &[i64] {
        &self.tables[id.0]
    }

    /// Borrows a host table by declaration index (for tooling that
    /// inspects a program it did not build).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn table_values_at(&self, index: usize) -> &[i64] {
        &self.tables[index]
    }

    /// Number of registered host tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of declared loop variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Names of the declared loop variables, indexed by [`VarId`].
    pub fn var_names(&self) -> &[String] {
        &self.vars
    }

    /// Number of static references in the body.
    pub fn ref_count(&self) -> u32 {
        self.ref_count
    }

    /// Total footprint of all arrays in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays
            .iter()
            .map(|a| a.base + a.size_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Clones the declarations (name, variables, arrays, tables) without
    /// the body — the starting point for transformations that rebuild
    /// the statement tree.
    pub(crate) fn clone_shell(&self) -> Program {
        Program {
            name: self.name.clone(),
            vars: self.vars.clone(),
            arrays: self.arrays.clone(),
            tables: self.tables.clone(),
            body: Vec::new(),
            next_base: self.next_base,
            ref_count: 0,
        }
    }

    /// Installs a transformed body, renumbering reference ids in the new
    /// program order.
    pub(crate) fn replace_body(&mut self, body: Vec<Stmt>) {
        fn renumber(stmts: &mut [Stmt], next: &mut u32) {
            for s in stmts {
                match s {
                    Stmt::For { body, .. } => renumber(body, next),
                    Stmt::Ref(r) => {
                        r.id = RefId(*next);
                        *next += 1;
                    }
                    Stmt::Call => {}
                }
            }
        }
        self.body = body;
        let mut next = 0;
        renumber(&mut self.body, &mut next);
        self.ref_count = next;
    }

    /// Visits every reference in program order.
    pub fn for_each_ref(&self, mut f: impl FnMut(&RefStmt)) {
        fn walk(stmts: &[Stmt], f: &mut impl FnMut(&RefStmt)) {
            for s in stmts {
                match s {
                    Stmt::For { body, .. } => walk(body, f),
                    Stmt::Ref(r) => f(r),
                    Stmt::Call => {}
                }
            }
        }
        walk(&self.body, &mut f);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program '{}': {} arrays, {} refs, footprint {} bytes",
            self.name,
            self.arrays.len(),
            self.ref_count,
            self.footprint_bytes()
        )?;
        for a in &self.arrays {
            writeln!(
                f,
                "  {}{:?} @ {:#x} ({} bytes)",
                a.name,
                a.dims,
                a.base,
                a.size_bytes()
            )?;
        }
        Ok(())
    }
}

/// Incrementally builds a statement list; obtained from
/// [`Program::body`] and from nested [`BodyBuilder::for_`] calls.
#[derive(Debug)]
pub struct BodyBuilder {
    stmts: Vec<Stmt>,
    next_ref: u32,
}

impl BodyBuilder {
    /// Appends a loop `for var in lo..hi` (step 1) with a nested body.
    pub fn for_(
        &mut self,
        var: VarId,
        lo: impl Into<Bound>,
        hi: impl Into<Bound>,
        f: impl FnOnce(&mut BodyBuilder),
    ) {
        self.for_step(var, lo, hi, 1, f);
    }

    /// Appends a loop with an explicit step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn for_step(
        &mut self,
        var: VarId,
        lo: impl Into<Bound>,
        hi: impl Into<Bound>,
        step: i64,
        f: impl FnOnce(&mut BodyBuilder),
    ) {
        self.push_loop(var, lo.into(), hi.into(), step, false, f);
    }

    /// Appends a *driver* loop: executed by the tracer but outside the
    /// analysis scope, like a time-step loop whose body is a subroutine
    /// call in the original code. References gain no temporal invariance
    /// from a driver loop, and a reference directly in its body counts as
    /// "outside loops" (untagged).
    pub fn for_driver(
        &mut self,
        var: VarId,
        lo: impl Into<Bound>,
        hi: impl Into<Bound>,
        f: impl FnOnce(&mut BodyBuilder),
    ) {
        self.push_loop(var, lo.into(), hi.into(), 1, true, f);
    }

    fn push_loop(
        &mut self,
        var: VarId,
        lo: Bound,
        hi: Bound,
        step: i64,
        opaque: bool,
        f: impl FnOnce(&mut BodyBuilder),
    ) {
        assert!(step != 0, "loop step must be non-zero");
        let mut inner = BodyBuilder {
            stmts: Vec::new(),
            next_ref: self.next_ref,
        };
        f(&mut inner);
        self.next_ref = inner.next_ref;
        self.stmts.push(Stmt::For {
            var,
            lo,
            hi,
            step,
            opaque,
            body: inner.stmts,
        });
    }

    /// Appends a load with affine subscripts.
    pub fn read(&mut self, array: ArrayId, subs: &[AffineExpr]) -> RefId {
        self.push_ref(array, affine_subs(subs), AccessKind::Read, None)
    }

    /// Appends a store with affine subscripts.
    pub fn write(&mut self, array: ArrayId, subs: &[AffineExpr]) -> RefId {
        self.push_ref(array, affine_subs(subs), AccessKind::Write, None)
    }

    /// Appends a load with explicit subscripts (allows indirect ones).
    pub fn read_subs(&mut self, array: ArrayId, subs: Vec<Subscript>) -> RefId {
        self.push_ref(array, subs, AccessKind::Read, None)
    }

    /// Appends a store with explicit subscripts (allows indirect ones).
    pub fn write_subs(&mut self, array: ArrayId, subs: Vec<Subscript>) -> RefId {
        self.push_ref(array, subs, AccessKind::Write, None)
    }

    /// Appends a load whose tags are forced by a user directive
    /// (`(temporal, spatial)`), bypassing the analysis — the paper's
    /// escape hatch for sparse codes (§4.1).
    pub fn read_tagged(
        &mut self,
        array: ArrayId,
        subs: Vec<Subscript>,
        temporal: bool,
        spatial: bool,
    ) -> RefId {
        self.push_ref(array, subs, AccessKind::Read, Some((temporal, spatial)))
    }

    /// Appends a store with forced tags.
    pub fn write_tagged(
        &mut self,
        array: ArrayId,
        subs: Vec<Subscript>,
        temporal: bool,
        spatial: bool,
    ) -> RefId {
        self.push_ref(array, subs, AccessKind::Write, Some((temporal, spatial)))
    }

    /// Appends a `CALL` statement.
    pub fn call(&mut self) {
        self.stmts.push(Stmt::Call);
    }

    fn push_ref(
        &mut self,
        array: ArrayId,
        subs: Vec<Subscript>,
        kind: AccessKind,
        force_tags: Option<(bool, bool)>,
    ) -> RefId {
        let id = RefId(self.next_ref);
        self.next_ref += 1;
        self.stmts.push(Stmt::Ref(RefStmt {
            id,
            array,
            subs,
            kind,
            force_tags,
        }));
        id
    }
}

/// Builds an indirect subscript `table[index]`.
pub fn indirect(table: TableId, index: AffineExpr) -> Subscript {
    Subscript::Indirect { table, index }
}

fn affine_subs(subs: &[AffineExpr]) -> Vec<Subscript> {
    subs.iter().cloned().map(Subscript::Affine).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{idx, lit};

    #[test]
    fn arrays_are_packed_back_to_back() {
        let mut p = Program::new("t");
        let a = p.array("A", &[10]);
        let b = p.array("B", &[4, 5]);
        assert_eq!(p.array_decl(a).base(), 0);
        assert_eq!(p.array_decl(a).size_bytes(), 80);
        assert_eq!(p.array_decl(b).base(), 80);
        assert_eq!(p.array_decl(b).size_bytes(), 160);
        assert_eq!(p.footprint_bytes(), 240);
    }

    #[test]
    fn explicit_base_does_not_collide_with_auto() {
        let mut p = Program::new("t");
        let _a = p.array_at("A", &[8], 0x1000);
        let b = p.array("B", &[8]);
        assert_eq!(p.array_decl(b).base(), 0x1000 + 64);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        let mut p = Program::new("t");
        let _ = p.array("A", &[0]);
    }

    #[test]
    fn ref_ids_number_in_program_order() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[10]);
        let mut ids = Vec::new();
        p.body(|s| {
            ids.push(s.read(a, &[lit(0)]));
            s.for_(i, 0, 10, |s| {
                ids.push(s.read(a, &[idx(i)]));
                ids.push(s.write(a, &[idx(i)]));
            });
        });
        assert_eq!(ids, vec![RefId(0), RefId(1), RefId(2)]);
        assert_eq!(p.ref_count(), 3);
    }

    #[test]
    fn rebuilding_body_renumbers() {
        let mut p = Program::new("t");
        let a = p.array("A", &[4]);
        p.body(|s| {
            s.read(a, &[lit(0)]);
            s.read(a, &[lit(1)]);
        });
        assert_eq!(p.ref_count(), 2);
        p.body(|s| {
            s.read(a, &[lit(2)]);
        });
        assert_eq!(p.ref_count(), 1);
    }

    #[test]
    fn for_each_ref_visits_in_order() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[10]);
        p.body(|s| {
            s.for_(i, 0, 10, |s| {
                s.read(a, &[idx(i)]);
                s.call();
                s.write(a, &[idx(i)]);
            });
        });
        let mut seen = Vec::new();
        p.for_each_ref(|r| seen.push((r.id(), r.kind())));
        assert_eq!(
            seen,
            vec![(RefId(0), AccessKind::Read), (RefId(1), AccessKind::Write)]
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_step_rejected() {
        let mut p = Program::new("t");
        let i = p.var("i");
        p.body(|s| {
            s.for_step(i, 0, 10, 0, |_| {});
        });
    }

    #[test]
    fn display_mentions_arrays() {
        let mut p = Program::new("mv");
        let _ = p.array("A", &[2, 2]);
        let text = p.to_string();
        assert!(text.contains("mv") && text.contains('A'));
    }
}
