//! Static validation of loop-nest programs: interval analysis over the
//! loop bounds proves (or refutes) that every affine subscript stays
//! inside its array extent, without running the tracer.
//!
//! Data-dependent constructs (table bounds, indirect subscripts, bounds
//! that reference outer loop variables) cannot be decided statically and
//! are reported as [`Verdict::Unknown`] — the interpreter still checks
//! them at trace time.

use crate::expr::{AffineExpr, Coef, VarId};
use crate::program::{Bound, Program, Stmt, Subscript};
use std::fmt;

/// Outcome of validating one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every affine subscript is provably within bounds.
    Ok,
    /// At least one subscript (listed) can leave its extent.
    OutOfBounds(Vec<Violation>),
    /// Some constructs could not be decided statically (listed as
    /// human-readable reasons); the rest is within bounds.
    Unknown(Vec<String>),
}

/// One provable out-of-bounds subscript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending array's name.
    pub array: String,
    /// Subscript position (0-based).
    pub dim: usize,
    /// The provable value range of the subscript.
    pub range: (i64, i64),
    /// The array extent it must stay under.
    pub extent: i64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subscript {} of '{}' spans [{}, {}] outside extent {}",
            self.dim, self.array, self.range.0, self.range.1, self.extent
        )
    }
}

/// Interval of one loop variable.
#[derive(Debug, Clone, Copy)]
struct VarRange {
    lo: i64,
    hi: i64, // inclusive
}

impl Program {
    /// Statically checks that every affine subscript stays within its
    /// array extent for the loop ranges of this program.
    ///
    /// ```
    /// use sac_loopir::{idx, shift, Program, Verdict};
    ///
    /// let mut p = Program::new("bad");
    /// let i = p.var("i");
    /// let a = p.array("A", &[8]);
    /// p.body(|s| {
    ///     s.for_(i, 0, 8, |s| {
    ///         s.read(a, &[shift(i, 1)]); // A(i+1): i=7 → 8, out of bounds
    ///     });
    /// });
    /// assert!(matches!(p.validate(), Verdict::OutOfBounds(_)));
    /// ```
    pub fn validate(&self) -> Verdict {
        let mut ranges: Vec<Option<VarRange>> = vec![None; self.var_count()];
        let mut violations = Vec::new();
        let mut unknowns = Vec::new();
        self.walk_validate(self.stmts(), &mut ranges, &mut violations, &mut unknowns);
        if !violations.is_empty() {
            Verdict::OutOfBounds(violations)
        } else if !unknowns.is_empty() {
            Verdict::Unknown(unknowns)
        } else {
            Verdict::Ok
        }
    }

    fn walk_validate(
        &self,
        stmts: &[Stmt],
        ranges: &mut Vec<Option<VarRange>>,
        violations: &mut Vec<Violation>,
        unknowns: &mut Vec<String>,
    ) {
        for s in stmts {
            match s {
                Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                    ..
                } => {
                    let range = loop_range(lo, hi, *step, ranges);
                    if range.is_none() {
                        unknowns.push(format!(
                            "loop over {} has data-dependent bounds",
                            self.var_names()
                                .get(var.index())
                                .cloned()
                                .unwrap_or_default()
                        ));
                    }
                    let saved = ranges[var.index()];
                    ranges[var.index()] = range;
                    self.walk_validate(body, ranges, violations, unknowns);
                    ranges[var.index()] = saved;
                }
                Stmt::Ref(r) => {
                    let decl = self.array_decl(r.array());
                    for (dim, sub) in r.subscripts().iter().enumerate() {
                        let extent = decl.dims().get(dim).copied().unwrap_or(1);
                        match sub {
                            Subscript::Affine(e) => match expr_range(e, ranges) {
                                Some((lo, hi)) => {
                                    if lo < 0 || hi >= extent {
                                        // Mixed-sign multi-variable subscripts
                                        // (e.g. `k - kk` in a blocked nest) are
                                        // usually correlated through the loop
                                        // bounds; plain intervals cannot prove
                                        // them wrong, only suspicious.
                                        if has_mixed_sign_terms(e) {
                                            unknowns.push(format!(
                                                "subscript {dim} of '{}' mixes \
correlated variables (interval [{lo}, {hi}])",
                                                decl.name()
                                            ));
                                        } else {
                                            violations.push(Violation {
                                                array: decl.name().to_string(),
                                                dim,
                                                range: (lo, hi),
                                                extent,
                                            });
                                        }
                                    }
                                }
                                None => unknowns.push(format!(
                                    "subscript {dim} of '{}' depends on an unbounded variable",
                                    decl.name()
                                )),
                            },
                            Subscript::Indirect { .. } => unknowns
                                .push(format!("subscript {dim} of '{}' is indirect", decl.name())),
                        }
                    }
                }
                Stmt::Call => {}
            }
        }
    }
}

/// The inclusive value range a loop variable takes, if statically known.
fn loop_range(lo: &Bound, hi: &Bound, step: i64, ranges: &[Option<VarRange>]) -> Option<VarRange> {
    let lo = bound_range(lo, ranges)?;
    let hi = bound_range(hi, ranges)?;
    if step > 0 {
        let mut last = hi.1 - 1;
        // With exact (constant) bounds the last value quantizes to the
        // step lattice: a block loop `0..60 by 20` tops out at 40.
        if lo.0 == lo.1 && hi.0 == hi.1 && last >= lo.0 {
            last = lo.0 + ((last - lo.0) / step) * step;
        }
        if last < lo.0 {
            return None; // possibly empty; treat as unknown to stay sound
        }
        Some(VarRange { lo: lo.0, hi: last })
    } else {
        let mut first = lo.1;
        let last = hi.0 + 1;
        if lo.0 == lo.1 && hi.0 == hi.1 && first >= last {
            // Descending lattice: the smallest reached value.
            let trips = (first - last) / (-step);
            let lowest = first + trips * step;
            return Some(VarRange {
                lo: lowest,
                hi: first,
            });
        }
        if first < last {
            return None;
        }
        let _ = &mut first;
        Some(VarRange { lo: last, hi: lo.1 })
    }
}

/// Whether an expression has variable terms of both signs — the shape of
/// correlated blocked-loop subscripts that defeat interval analysis.
fn has_mixed_sign_terms(e: &AffineExpr) -> bool {
    let signs: Vec<i64> = e
        .terms()
        .iter()
        .map(|&(_, c)| match c {
            Coef::Known(k) | Coef::Param(k) => k.signum(),
        })
        .filter(|&s| s != 0)
        .collect();
    signs.iter().any(|&s| s > 0) && signs.iter().any(|&s| s < 0)
}

/// The value range of a bound expression.
fn bound_range(b: &Bound, ranges: &[Option<VarRange>]) -> Option<(i64, i64)> {
    match b {
        Bound::Affine(e) => expr_range(e, ranges),
        Bound::Table { .. } => None,
    }
}

/// Interval evaluation of an affine expression.
fn expr_range(e: &AffineExpr, ranges: &[Option<VarRange>]) -> Option<(i64, i64)> {
    let mut lo = e.constant_term();
    let mut hi = e.constant_term();
    for &(v, c) in e.terms() {
        let k = match c {
            Coef::Known(k) | Coef::Param(k) => k,
        };
        if k == 0 {
            continue;
        }
        let r = var_range(v, ranges)?;
        if k > 0 {
            lo += k * r.lo;
            hi += k * r.hi;
        } else {
            lo += k * r.hi;
            hi += k * r.lo;
        }
    }
    Some((lo, hi))
}

fn var_range(v: VarId, ranges: &[Option<VarRange>]) -> Option<VarRange> {
    ranges.get(v.index()).copied().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{aff, idx, shift};
    use crate::program::indirect;

    #[test]
    fn clean_nest_validates_ok() {
        let mut p = Program::new("ok");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[8, 8]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.for_(j, 0, 8, |s| {
                    s.read(a, &[idx(i), idx(j)]);
                });
            });
        });
        assert_eq!(p.validate(), Verdict::Ok);
    }

    #[test]
    fn off_by_one_is_caught() {
        let mut p = Program::new("bad");
        let i = p.var("i");
        let a = p.array("A", &[8]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.read(a, &[shift(i, 1)]);
            });
        });
        match p.validate() {
            Verdict::OutOfBounds(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].range, (1, 8));
                assert_eq!(v[0].extent, 8);
                assert!(v[0].to_string().contains('A'));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn negative_subscript_is_caught() {
        let mut p = Program::new("neg");
        let i = p.var("i");
        let a = p.array("A", &[8]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.read(a, &[shift(i, -1)]);
            });
        });
        assert!(matches!(p.validate(), Verdict::OutOfBounds(_)));
    }

    #[test]
    fn negative_coefficient_interval_is_sound() {
        // A(7-i) over i in 0..8: spans [0,7], fine.
        let mut p = Program::new("rev");
        let i = p.var("i");
        let a = p.array("A", &[8]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.read(a, &[aff(&[(i, -1)], 7)]);
            });
        });
        assert_eq!(p.validate(), Verdict::Ok);
    }

    #[test]
    fn triangular_bounds_are_handled() {
        // j in i..8 with A(j): j spans [0,7] ⊆ extent.
        let mut p = Program::new("tri");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[8]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.for_(j, idx(i), 8, |s| {
                    s.read(a, &[idx(j)]);
                });
            });
        });
        assert_eq!(p.validate(), Verdict::Ok);
    }

    #[test]
    fn indirect_subscripts_are_unknown() {
        let mut p = Program::new("ind");
        let i = p.var("i");
        let x = p.array("X", &[8]);
        let t = p.table(vec![0, 1, 2]);
        p.body(|s| {
            s.for_(i, 0, 3, |s| {
                s.read_subs(x, vec![indirect(t, idx(i))]);
            });
        });
        match p.validate() {
            Verdict::Unknown(reasons) => {
                assert!(reasons.iter().any(|r| r.contains("indirect")));
            }
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    #[test]
    fn table_bounds_are_unknown() {
        let mut p = Program::new("tab");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[64]);
        let t = p.table(vec![0, 4, 9]);
        p.body(|s| {
            s.for_(i, 0, 2, |s| {
                s.for_(
                    j,
                    crate::Bound::Table {
                        table: t,
                        index: idx(i),
                    },
                    crate::Bound::Table {
                        table: t,
                        index: shift(i, 1),
                    },
                    |s| {
                        s.read(a, &[idx(j)]);
                    },
                );
            });
        });
        assert!(matches!(p.validate(), Verdict::Unknown(_)));
    }

    #[test]
    fn stepped_loops_quantize_to_the_lattice() {
        // jj in 0..60 by 20 reaches at most 40; A(jj+19) stays under 60.
        let mut p = Program::new("blocked");
        let jj = p.var("jj");
        let j = p.var("j");
        let a = p.array("A", &[60]);
        p.body(|s| {
            s.for_step(jj, 0, 60, 20, |s| {
                s.for_(j, idx(jj), aff(&[(jj, 1)], 20), |s| {
                    s.read(a, &[idx(j)]);
                });
            });
        });
        assert_eq!(p.validate(), Verdict::Ok);
    }

    #[test]
    fn descending_loops_validate() {
        let mut p = Program::new("desc");
        let i = p.var("i");
        let a = p.array("A", &[8]);
        p.body(|s| {
            s.for_step(i, 7, -1, -1, |s| {
                s.read(a, &[idx(i)]);
            });
        });
        assert_eq!(p.validate(), Verdict::Ok);
    }

    #[test]
    fn correlated_blocked_subscripts_are_unknown_not_wrong() {
        // TB(k - kk) with k in kk..kk+4: provably fine, but intervals
        // cannot see the correlation — must degrade to Unknown.
        let mut p = Program::new("copy");
        let kk = p.var("kk");
        let k = p.var("k");
        let tb = p.array("TB", &[4]);
        p.body(|s| {
            s.for_step(kk, 0, 16, 4, |s| {
                s.for_(k, idx(kk), aff(&[(kk, 1)], 4), |s| {
                    s.read(tb, &[aff(&[(k, 1), (kk, -1)], 0)]);
                });
            });
        });
        assert!(matches!(p.validate(), Verdict::Unknown(_)));
    }

    #[test]
    fn all_workload_programs_validate() {
        // The nine shipped benchmarks must be provably in bounds or only
        // data-dependently unknown — never provably broken.
        // (Exercised through the public API in the workloads crate's own
        // tests; here we just check a representative nest.)
        let mut p = Program::new("mv");
        let j1 = p.var("j1");
        let j2 = p.var("j2");
        let a = p.array("A", &[64, 64]);
        let x = p.array("X", &[64]);
        p.body(|s| {
            s.for_(j1, 0, 64, |s| {
                s.for_(j2, 0, 64, |s| {
                    s.read(a, &[idx(j2), idx(j1)]);
                    s.read(x, &[idx(j2)]);
                });
            });
        });
        assert_eq!(p.validate(), Verdict::Ok);
    }
}
