//! The trace-emitting interpreter (the paper's source-level tracer).

use crate::analysis_impl::{analyze, Tags};
use crate::expr::AffineExpr;
use crate::program::{Bound, Program, RefStmt, Stmt, Subscript};
use sac_trace::{Access, AccessKind, GapModel, Trace};
use std::fmt;

/// Options for trace generation.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Seed for the issue-gap RNG; a given seed always reproduces the same
    /// trace, as in the paper ("repetitive simulations performed with the
    /// same trace are completely identical").
    pub seed: u64,
    /// When `false`, every gap is 1 cycle (useful in unit tests).
    pub gaps: bool,
    /// When `true`, the tracer also runs the variable-virtual-line level
    /// analysis (§3.2 extension) and attaches a 2-bit spatial level to
    /// each reference.
    pub levels: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            seed: 0x5AC,
            gaps: true,
            levels: false,
        }
    }
}

/// Errors raised while interpreting a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A subscript evaluated outside its array extent.
    OutOfBounds {
        /// Name of the offending array.
        array: String,
        /// The subscript position (0-based).
        dim: usize,
        /// The evaluated subscript value.
        value: i64,
        /// The extent it violated.
        extent: i64,
    },
    /// A table lookup (indirect subscript or data-dependent bound) was out
    /// of range.
    TableOutOfBounds {
        /// Table index within the program.
        table: usize,
        /// The evaluated position.
        index: i64,
        /// The table length.
        len: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::OutOfBounds {
                array,
                dim,
                value,
                extent,
            } => write!(
                f,
                "subscript {dim} of array '{array}' evaluated to {value}, outside extent {extent}"
            ),
            TraceError::TableOutOfBounds { table, index, len } => write!(
                f,
                "table {table} lookup at position {index}, outside length {len}"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl Program {
    /// Runs the locality analysis, returning tags indexed by [`crate::RefId`].
    pub fn analyze(&self) -> Vec<Tags> {
        analyze(self)
    }

    /// Interprets the program, emitting one tagged trace entry per
    /// executed reference.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if a subscript or table lookup evaluates out
    /// of range — this always indicates a bug in the workload definition.
    pub fn trace(&self, opts: &TraceOptions) -> Result<Trace, TraceError> {
        let tags = self.analyze();
        let levels = if opts.levels {
            Some(crate::analysis_impl::analyze_levels(self))
        } else {
            None
        };
        let mut gaps = GapModel::seeded(opts.seed);
        let mut env = vec![0i64; self.var_count()];
        let mut trace = Trace::with_capacity(self.name(), 1024);
        let mut interp = Interp {
            p: self,
            tags: &tags,
            levels: levels.as_deref(),
            trace: &mut trace,
            gaps: &mut gaps,
            use_gaps: opts.gaps,
        };
        interp.run(self.stmts(), &mut env)?;
        Ok(trace)
    }

    /// Interprets the program with default options.
    ///
    /// # Panics
    ///
    /// Panics on [`TraceError`]; use [`Program::trace`] to handle errors.
    pub fn trace_default(&self) -> Trace {
        self.trace(&TraceOptions::default())
            .expect("workload program traces without subscript errors")
    }
}

struct Interp<'a> {
    p: &'a Program,
    tags: &'a [Tags],
    levels: Option<&'a [u8]>,
    trace: &'a mut Trace,
    gaps: &'a mut GapModel,
    use_gaps: bool,
}

impl Interp<'_> {
    fn run(&mut self, stmts: &[Stmt], env: &mut Vec<i64>) -> Result<(), TraceError> {
        for s in stmts {
            match s {
                Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                    ..
                } => {
                    let lo = self.eval_bound(lo, env)?;
                    let hi = self.eval_bound(hi, env)?;
                    let mut v = lo;
                    while (*step > 0 && v < hi) || (*step < 0 && v > hi) {
                        env[var.index()] = v;
                        self.run(body, env)?;
                        v += step;
                    }
                }
                Stmt::Ref(r) => self.emit(r, env)?,
                Stmt::Call => {}
            }
        }
        Ok(())
    }

    fn eval_bound(&self, b: &Bound, env: &[i64]) -> Result<i64, TraceError> {
        match b {
            Bound::Affine(e) => Ok(e.eval(env)),
            Bound::Table { table, index } => self.lookup(*table, index, env),
        }
    }

    fn lookup(
        &self,
        table: crate::program::TableId,
        index: &AffineExpr,
        env: &[i64],
    ) -> Result<i64, TraceError> {
        let values = self.p.table_values(table);
        let pos = index.eval(env);
        if pos < 0 || pos as usize >= values.len() {
            return Err(TraceError::TableOutOfBounds {
                table: table_index(table),
                index: pos,
                len: values.len(),
            });
        }
        Ok(values[pos as usize])
    }

    fn emit(&mut self, r: &RefStmt, env: &[i64]) -> Result<(), TraceError> {
        let decl = self.p.array_decl(r.array());
        let dims = decl.dims();
        let mut linear: i64 = 0;
        let mut stride: i64 = 1;
        for (k, sub) in r.subscripts().iter().enumerate() {
            let v = match sub {
                Subscript::Affine(e) => e.eval(env),
                Subscript::Indirect { table, index } => self.lookup(*table, index, env)?,
            };
            let extent = dims.get(k).copied().unwrap_or(1);
            if v < 0 || v >= extent {
                return Err(TraceError::OutOfBounds {
                    array: decl.name().to_string(),
                    dim: k,
                    value: v,
                    extent,
                });
            }
            linear += v * stride;
            stride *= extent;
        }
        let addr = decl.base() + linear as u64 * sac_trace::WORD_BYTES;
        let tags = self.tags[r.id().index()];
        let gap = if self.use_gaps { self.gaps.sample() } else { 1 };
        let level = self.levels.map(|l| l[r.id().index()]).unwrap_or(0);
        let access = match r.kind() {
            AccessKind::Read => Access::read(addr),
            AccessKind::Write => Access::write(addr),
        }
        .with_temporal(tags.temporal)
        .with_spatial(tags.spatial)
        .with_spatial_level(level)
        .with_gap(gap)
        .with_instr(r.id().0);
        self.trace.push(access);
        Ok(())
    }
}

fn table_index(t: crate::program::TableId) -> usize {
    t.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{idx, lit, shift};
    use crate::program::indirect;

    #[test]
    fn simple_loop_emits_in_order() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[4]);
        p.body(|s| {
            s.for_(i, 0, 4, |s| {
                s.read(a, &[idx(i)]);
            });
        });
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let addrs: Vec<u64> = t.iter().map(|a| a.addr()).collect();
        assert_eq!(addrs, vec![0, 8, 16, 24]);
        assert!(t.iter().all(|a| a.gap() == 1));
    }

    #[test]
    fn column_major_addressing() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[3, 2]);
        p.body(|s| {
            s.for_(j, 0, 2, |s| {
                s.for_(i, 0, 3, |s| {
                    s.read(a, &[idx(i), idx(j)]);
                });
            });
        });
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let addrs: Vec<u64> = t.iter().map(|a| a.addr()).collect();
        // Column-major: (0,0),(1,0),(2,0),(0,1),(1,1),(2,1)
        assert_eq!(addrs, vec![0, 8, 16, 24, 32, 40]);
    }

    #[test]
    fn descending_loop() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[4]);
        p.body(|s| {
            s.for_step(i, 3, -1, -1, |s| {
                s.read(a, &[idx(i)]);
            });
        });
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let addrs: Vec<u64> = t.iter().map(|a| a.addr()).collect();
        assert_eq!(addrs, vec![24, 16, 8, 0]);
    }

    #[test]
    fn triangular_bounds() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[4, 4]);
        p.body(|s| {
            s.for_(i, 0, 4, |s| {
                s.for_(j, idx(i), 4, |s| {
                    s.read(a, &[idx(j), idx(i)]);
                });
            });
        });
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        // 4 + 3 + 2 + 1 iterations.
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn indirect_subscript_reads_table() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let x = p.array("X", &[10]);
        let tab = p.table(vec![9, 0, 5]);
        p.body(|s| {
            s.for_(i, 0, 3, |s| {
                s.read_subs(x, vec![indirect(tab, idx(i))]);
            });
        });
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let addrs: Vec<u64> = t.iter().map(|a| a.addr()).collect();
        assert_eq!(addrs, vec![72, 0, 40]);
    }

    #[test]
    fn table_bounds_drive_loops() {
        // CSR-style: row pointers [0, 2, 5].
        let mut p = Program::new("t");
        let r = p.var("r");
        let k = p.var("k");
        let a = p.array("A", &[5]);
        let ptr = p.table(vec![0, 2, 5]);
        p.body(|s| {
            s.for_(r, 0, 2, |s| {
                s.for_(
                    k,
                    Bound::Table {
                        table: ptr,
                        index: idx(r),
                    },
                    Bound::Table {
                        table: ptr,
                        index: shift(r, 1),
                    },
                    |s| {
                        s.read(a, &[idx(k)]);
                    },
                );
            });
        });
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn out_of_bounds_subscript_is_an_error() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[4]);
        p.body(|s| {
            s.for_(i, 0, 5, |s| {
                s.read(a, &[idx(i)]);
            });
        });
        let err = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap_err();
        assert!(matches!(err, TraceError::OutOfBounds { value: 4, .. }));
        assert!(err.to_string().contains('A'));
    }

    #[test]
    fn table_out_of_range_is_an_error() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let x = p.array("X", &[10]);
        let tab = p.table(vec![0]);
        p.body(|s| {
            s.for_(i, 0, 3, |s| {
                s.read_subs(x, vec![indirect(tab, idx(i))]);
            });
        });
        let err = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap_err();
        assert!(matches!(err, TraceError::TableOutOfBounds { .. }));
    }

    #[test]
    fn tags_are_attached_to_entries() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let x = p.array("X", &[8]);
        p.body(|s| {
            s.for_(i, 0, 2, |s| {
                s.for_(j, 0, 8, |s| {
                    s.read(x, &[idx(j)]); // temporal (invariant in i), spatial
                });
            });
        });
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        assert!(t.iter().all(|a| a.temporal() && a.spatial()));
    }

    #[test]
    fn same_seed_reproduces_gaps() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[64]);
        p.body(|s| {
            s.for_(i, 0, 64, |s| {
                s.read(a, &[idx(i)]);
            });
        });
        let t1 = p
            .trace(&TraceOptions {
                seed: 9,
                gaps: true,
                levels: false,
            })
            .unwrap();
        let t2 = p
            .trace(&TraceOptions {
                seed: 9,
                gaps: true,
                levels: false,
            })
            .unwrap();
        assert_eq!(t1, t2);
        assert!(t1.iter().any(|a| a.gap() > 1));
    }

    #[test]
    fn literal_subscript_is_in_bounds() {
        let mut p = Program::new("t");
        let a = p.array("A", &[1]);
        p.body(|s| {
            s.read(a, &[lit(0)]);
        });
        assert_eq!(p.trace_default().len(), 1);
    }
}
