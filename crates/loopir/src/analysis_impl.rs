//! The paper's locality analysis (§2.3).
//!
//! Tagging rules, as published:
//!
//! * **Spatial** — the coefficient of the innermost enclosing loop variable
//!   in the reference's flattened (element) subscript is a *known* constant
//!   whose per-iteration magnitude is below 4 elements (4 doubles = one
//!   32-byte line). Parameter coefficients are never spatial.
//! * **Temporal** — the reference has a temporal self-dependence (its
//!   flattened subscript is invariant in at least one enclosing loop whose
//!   iteration does not shift the inner loops' ranges) or belongs to a
//!   uniformly generated group (two references to the same array, under
//!   the same innermost loop, whose flattened subscripts share
//!   coefficients and differ by constants).
//! * **Group leader** — within a uniformly generated group, only the
//!   *leading* reference (largest constant, i.e. the first to touch a new
//!   line under ascending loops) keeps its spatial tag; the followers hit
//!   on data the leader already brought in. This is the reading of the
//!   paper's Figure 5, where `B(J,I+1)` is tagged spatial but `B(J,I)` is
//!   not, although both have innermost coefficient 1.
//! * **CALL kill** — a loop whose body directly contains a `CALL` loses
//!   the tags of every reference in that body: no interprocedural
//!   analysis is performed.
//! * **User directives** — forced tags on a reference override everything
//!   (the paper's escape hatch for sparse codes, §4.1).

use crate::expr::{AffineExpr, Coef, VarId};
use crate::program::{Bound, Program, RefStmt, Stmt, Subscript};
use std::collections::BTreeMap;

/// Elements per 32-byte line of doubles: the spatial-coefficient threshold.
const SPATIAL_COEF_LIMIT: i64 = 4;

/// The two software hint bits computed for one static reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tags {
    /// The temporal tag (drives the bounce-back mechanism).
    pub temporal: bool,
    /// The spatial tag (drives virtual-line fills).
    pub spatial: bool,
}

impl Tags {
    /// Both tags cleared.
    pub const NONE: Tags = Tags {
        temporal: false,
        spatial: false,
    };
}

/// One enclosing loop as seen from a reference.
#[derive(Debug, Clone)]
struct LoopCtx {
    var: usize,
    step: i64,
    /// Unique id of the loop statement (distinguishes two textual loops
    /// that reuse the same variable).
    uid: usize,
    /// Variables appearing in this loop's bounds.
    bound_vars: Vec<usize>,
    /// Trip count, when both bounds are compile-time constants.
    trip: Option<i64>,
}

/// Per-reference record gathered by the tree walk.
#[derive(Debug)]
struct RefInfo {
    /// Flattened element-index expression (`None` if any subscript is
    /// indirect).
    flat: Option<AffineExpr>,
    /// Enclosing loops, outermost first.
    loops: Vec<LoopCtx>,
    /// Whether an enclosing loop body directly contains a CALL.
    killed: bool,
    array: usize,
    forced: Option<(bool, bool)>,
}

impl RefInfo {
    /// Uid of the innermost enclosing loop.
    fn innermost_uid(&self) -> Option<usize> {
        self.loops.last().map(|l| l.uid)
    }

    /// True when the flattened subscript is invariant in at least one
    /// enclosing loop *and* that loop's iteration does not shift the
    /// ranges of the loops nested below it (e.g. a block loop `jj` whose
    /// inner loop runs `jj..jj+B` reuses nothing across its iterations).
    fn self_temporal(&self, flat: &AffineExpr) -> bool {
        (0..self.loops.len()).any(|d| {
            let v = self.loops[d].var;
            flat.coef_of(VarId(v)) == Coef::Known(0)
                && self.loops[d + 1..]
                    .iter()
                    .all(|inner| !inner.bound_vars.contains(&v))
        })
    }
}

/// Runs the analysis and returns the tags for each reference, indexed by
/// [`crate::RefId`] order.
pub fn analyze(p: &Program) -> Vec<Tags> {
    let infos = gather(p);

    // Uniformly generated groups: same array, same known coefficient
    // vector, same innermost loop, not killed.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct GroupKey {
        array: usize,
        nest: usize,
        coeffs: Vec<(usize, i64)>,
    }
    let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
    for (i, info) in infos.iter().enumerate() {
        if info.killed {
            continue;
        }
        let Some(nest) = info.innermost_uid() else {
            continue;
        };
        let Some(flat) = &info.flat else { continue };
        let Some(coeffs) = known_coeffs(flat) else {
            continue;
        };
        groups
            .entry(GroupKey {
                array: info.array,
                nest,
                coeffs,
            })
            .or_default()
            .push(i);
    }

    let mut group_temporal = vec![false; infos.len()];
    let mut spatial_demoted = vec![false; infos.len()];
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        let constants: Vec<i64> = members
            .iter()
            .map(|&i| {
                infos[i]
                    .flat
                    .as_ref()
                    .expect("grouped refs are affine")
                    .constant_term()
            })
            .collect();
        let max_const = *constants.iter().max().expect("non-empty group");
        for (&i, &c) in members.iter().zip(&constants) {
            group_temporal[i] = true;
            if c < max_const {
                spatial_demoted[i] = true;
            }
        }
    }

    infos
        .iter()
        .enumerate()
        .map(|(i, info)| {
            let mut tags = Tags::NONE;
            if !info.killed && !info.loops.is_empty() {
                if let Some(flat) = &info.flat {
                    tags.temporal = info.self_temporal(flat) || group_temporal[i];
                    let inner = info.loops.last().expect("non-empty loop stack");
                    if let Coef::Known(k) = flat.coef_of(VarId(inner.var)) {
                        let stride = k.saturating_mul(inner.step);
                        tags.spatial = stride.abs() < SPATIAL_COEF_LIMIT && !spatial_demoted[i];
                    }
                }
            }
            if let Some((t, s)) = info.forced {
                tags = Tags {
                    temporal: t,
                    spatial: s,
                };
            }
            tags
        })
        .collect()
}

/// Extracts the non-zero known coefficients, or `None` if any coefficient
/// is a parameter.
/// Walks the program and collects per-reference records.
fn gather(p: &Program) -> Vec<RefInfo> {
    let mut infos: Vec<Option<RefInfo>> = Vec::new();
    infos.resize_with(p.ref_count() as usize, || None);
    let mut walker = Walker {
        p,
        infos: &mut infos,
        next_uid: 0,
    };
    walker.walk(p.stmts(), &mut Vec::new(), false);
    infos
        .into_iter()
        .map(|i| i.expect("every reference visited"))
        .collect()
}

/// Estimates the spatial *level* of each reference for the paper's
/// variable-length virtual-line extension (§3.2): find the nearest
/// enclosing loop along which the reference streams with a sub-line
/// stride, estimate the stream's extent from the (constant) trip count,
/// and encode it as `level L ⇒ 2^L physical lines` (0 = leave the
/// default; the two extra instruction bits the paper budgets for).
pub fn analyze_levels(p: &Program) -> Vec<u8> {
    let infos = gather(p);
    let tags = analyze(p);
    infos
        .iter()
        .zip(&tags)
        .map(|(info, t)| {
            if !t.spatial {
                return 0;
            }
            let Some(flat) = &info.flat else { return 0 };
            // Nearest enclosing loop with a small non-zero stride.
            for ctx in info.loops.iter().rev() {
                if let Coef::Known(k) = flat.coef_of(VarId(ctx.var)) {
                    let stride = (k * ctx.step).abs();
                    if stride == 0 {
                        continue;
                    }
                    if stride >= 4 {
                        return 0;
                    }
                    let Some(trip) = ctx.trip else { return 0 };
                    let run_bytes = trip * stride * 8;
                    return if run_bytes >= 256 {
                        3
                    } else if run_bytes >= 128 {
                        2
                    } else if run_bytes >= 64 {
                        1
                    } else {
                        0
                    };
                }
            }
            0
        })
        .collect()
}

fn known_coeffs(e: &AffineExpr) -> Option<Vec<(usize, i64)>> {
    let mut out = Vec::new();
    for &(v, c) in e.terms() {
        match c {
            Coef::Known(0) => {}
            Coef::Known(k) => out.push((v.index(), k)),
            Coef::Param(_) => return None,
        }
    }
    out.sort_unstable();
    Some(out)
}

struct Walker<'a> {
    p: &'a Program,
    infos: &'a mut Vec<Option<RefInfo>>,
    next_uid: usize,
}

impl Walker<'_> {
    fn walk(&mut self, stmts: &[Stmt], loops: &mut Vec<LoopCtx>, killed: bool) {
        for s in stmts {
            match s {
                Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    opaque,
                    body,
                } => {
                    // A CALL directly in this loop's body clears the tags
                    // of everything in the body (no interprocedural
                    // analysis), without touching sibling or outer loops.
                    let kill_here = killed || body.iter().any(|s| matches!(s, Stmt::Call));
                    if *opaque {
                        // Driver loop: not part of the analysis scope.
                        self.walk(body, loops, kill_here);
                        continue;
                    }
                    let uid = self.next_uid;
                    self.next_uid += 1;
                    let mut bound_vars = bound_var_ids(lo);
                    bound_vars.extend(bound_var_ids(hi));
                    bound_vars.sort_unstable();
                    bound_vars.dedup();
                    loops.push(LoopCtx {
                        var: var.index(),
                        step: *step,
                        uid,
                        bound_vars,
                        trip: const_trip(lo, hi, *step),
                    });
                    self.walk(body, loops, kill_here);
                    loops.pop();
                }
                Stmt::Ref(r) => {
                    self.infos[r.id.index()] = Some(RefInfo {
                        flat: flatten(self.p, r),
                        loops: loops.clone(),
                        killed,
                        array: r.array.0,
                        forced: r.force_tags,
                    });
                }
                Stmt::Call => {}
            }
        }
    }
}

/// Trip count of `lo..hi` by `step` when the *span* is a compile-time
/// constant — either both bounds are constants, or they are affine with
/// identical coefficient vectors (the blocked-loop shape `kk .. kk+B`,
/// whose trip is exactly `B/step`).
fn const_trip(lo: &Bound, hi: &Bound, step: i64) -> Option<i64> {
    fn affine(b: &Bound) -> Option<&AffineExpr> {
        match b {
            Bound::Affine(e) => Some(e),
            Bound::Table { .. } => None,
        }
    }
    let (lo, hi) = (affine(lo)?, affine(hi)?);
    let (lo_coeffs, hi_coeffs) = (known_coeffs(lo)?, known_coeffs(hi)?);
    if lo_coeffs != hi_coeffs {
        return None;
    }
    let span = if step > 0 {
        hi.constant_term() - lo.constant_term()
    } else {
        lo.constant_term() - hi.constant_term()
    };
    if span <= 0 {
        Some(0)
    } else {
        Some((span + step.abs() - 1) / step.abs())
    }
}

fn bound_var_ids(b: &Bound) -> Vec<usize> {
    let expr = match b {
        Bound::Affine(e) => e,
        Bound::Table { index, .. } => index,
    };
    expr.terms().iter().map(|&(v, _)| v.index()).collect()
}

/// Flattens a reference's subscripts into a single element-index affine
/// expression using the array's column-major strides; `None` if any
/// subscript is indirect.
pub(crate) fn flatten(p: &Program, r: &RefStmt) -> Option<AffineExpr> {
    let dims = p.array_decl(r.array).dims();
    let mut acc = AffineExpr::constant(0);
    let mut stride = 1i64;
    for (k, sub) in r.subs.iter().enumerate() {
        match sub {
            Subscript::Affine(e) => {
                acc = acc.plus_expr(&e.scaled(stride));
            }
            Subscript::Indirect { .. } => return None,
        }
        if k < dims.len() {
            stride *= dims[k];
        }
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{aff, idx, lit, shift, AffineExpr};
    use crate::program::indirect;
    use crate::Program;

    /// Builds the matrix-vector multiply of the paper (§2.2):
    /// `Y(j1) ; DO j2 { A(j2,j1), X(j2) } ; Y(j1)=`.
    fn mv_program(n: i64) -> (Program, Vec<Tags>) {
        let mut p = Program::new("mv");
        let j1 = p.var("j1");
        let j2 = p.var("j2");
        let a = p.array("A", &[n, n]);
        let x = p.array("X", &[n]);
        let y = p.array("Y", &[n]);
        p.body(|s| {
            s.for_(j1, 0, n, |s| {
                s.read(y, &[idx(j1)]);
                s.for_(j2, 0, n, |s| {
                    s.read(a, &[idx(j2), idx(j1)]);
                    s.read(x, &[idx(j2)]);
                });
                s.write(y, &[idx(j1)]);
            });
        });
        let tags = analyze(&p);
        (p, tags)
    }

    #[test]
    fn mv_tags_match_the_paper() {
        let (_, tags) = mv_program(100);
        // Y(j1) read: coefficient 1 on its innermost loop j1 → spatial;
        // group with the Y write → temporal.
        assert_eq!(
            tags[0],
            Tags {
                temporal: true,
                spatial: true
            }
        );
        // A(j2,j1): coefficient 1 on innermost j2 → spatial; coefficients
        // (1, n) non-zero on both loops, no group → not temporal.
        assert_eq!(
            tags[1],
            Tags {
                temporal: false,
                spatial: true
            }
        );
        // X(j2): invariant in j1 → temporal; innermost coefficient 1 →
        // spatial.
        assert_eq!(
            tags[2],
            Tags {
                temporal: true,
                spatial: true
            }
        );
        // Y(j1) write: same as read.
        assert_eq!(
            tags[3],
            Tags {
                temporal: true,
                spatial: true
            }
        );
    }

    #[test]
    fn large_innermost_coefficient_is_not_spatial() {
        // A(I,J) with J innermost: flattened = I + N*J → coefficient N.
        let mut p = Program::new("t");
        let i = p.var("I");
        let j = p.var("J");
        let a = p.array("A", &[64, 64]);
        p.body(|s| {
            s.for_(i, 0, 64, |s| {
                s.for_(j, 0, 64, |s| {
                    s.read(a, &[idx(i), idx(j)]);
                });
            });
        });
        assert_eq!(analyze(&p)[0], Tags::NONE);
    }

    #[test]
    fn strided_innermost_loop_defeats_spatial() {
        // A(i) with step 8: per-iteration stride is 8 elements.
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[640]);
        p.body(|s| {
            s.for_step(i, 0, 640, 8, |s| {
                s.read(a, &[idx(i)]);
            });
        });
        assert!(!analyze(&p)[0].spatial);
    }

    #[test]
    fn param_coefficient_is_not_spatial() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[4096]);
        p.body(|s| {
            s.for_(i, 0, 1024, |s| {
                s.read_subs(a, vec![AffineExpr::new(&[(i, Coef::Param(1))], 0).into()]);
            });
        });
        let tags = analyze(&p);
        assert!(!tags[0].spatial);
        assert!(!tags[0].temporal);
    }

    #[test]
    fn call_kills_only_the_body_that_contains_it() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[64]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.read(a, &[lit(0)]); // A(0): invariant in i
                s.for_(j, 0, 8, |s| {
                    s.read(a, &[idx(j)]);
                    s.call();
                });
            });
        });
        let tags = analyze(&p);
        // The outer-body reference keeps its tags; the j-body is killed.
        assert_eq!(
            tags[0],
            Tags {
                temporal: true,
                spatial: true
            }
        );
        assert_eq!(tags[1], Tags::NONE);
    }

    #[test]
    fn call_kill_propagates_into_nested_loops() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[64]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.call();
                s.for_(j, 0, 8, |s| {
                    s.read(a, &[idx(j)]);
                });
            });
        });
        // The CALL is in the i body: everything below i is untagged.
        assert_eq!(analyze(&p)[0], Tags::NONE);
    }

    #[test]
    fn call_in_sibling_loop_does_not_kill() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[64]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.read(a, &[idx(i)]);
            });
            s.for_(j, 0, 8, |s| {
                s.call();
                s.read(a, &[idx(j)]);
            });
        });
        let tags = analyze(&p);
        assert!(tags[0].spatial);
        assert_eq!(tags[1], Tags::NONE);
    }

    #[test]
    fn indirect_subscript_gets_no_tags_without_directive() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let x = p.array("X", &[100]);
        let t = p.table((0..100).collect());
        p.body(|s| {
            s.for_(i, 0, 100, |s| {
                s.read_subs(x, vec![indirect(t, idx(i))]);
            });
        });
        assert_eq!(analyze(&p)[0], Tags::NONE);
    }

    #[test]
    fn directive_overrides_analysis() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let x = p.array("X", &[100]);
        let t = p.table((0..100).collect());
        p.body(|s| {
            s.for_(i, 0, 100, |s| {
                s.read_tagged(x, vec![indirect(t, idx(i))], true, false);
            });
        });
        assert_eq!(
            analyze(&p)[0],
            Tags {
                temporal: true,
                spatial: false
            }
        );
    }

    #[test]
    fn reference_outside_any_loop_is_untagged() {
        let mut p = Program::new("t");
        let a = p.array("A", &[4]);
        p.body(|s| {
            s.read(a, &[lit(0)]);
        });
        assert_eq!(analyze(&p)[0], Tags::NONE);
    }

    #[test]
    fn group_followers_lose_spatial_but_gain_temporal() {
        // The B(J,I) / B(J,I+1) pair of Figure 5.
        let mut p = Program::new("t");
        let i = p.var("I");
        let j = p.var("J");
        let b = p.array("B", &[16, 17]);
        p.body(|s| {
            s.for_(i, 0, 16, |s| {
                s.for_(j, 0, 16, |s| {
                    s.read(b, &[idx(j), idx(i)]);
                    s.read(b, &[idx(j), shift(i, 1)]);
                });
            });
        });
        let tags = analyze(&p);
        assert_eq!(
            tags[0],
            Tags {
                temporal: true,
                spatial: false
            }
        );
        assert_eq!(
            tags[1],
            Tags {
                temporal: true,
                spatial: true
            }
        );
    }

    #[test]
    fn same_constant_group_keeps_spatial() {
        // Read and write of Y(I): a group with equal constants — no
        // demotion (both keep spatial), both temporal.
        let mut p = Program::new("t");
        let i = p.var("i");
        let y = p.array("Y", &[32]);
        p.body(|s| {
            s.for_(i, 0, 32, |s| {
                s.read(y, &[idx(i)]);
                s.write(y, &[idx(i)]);
            });
        });
        let tags = analyze(&p);
        assert_eq!(
            tags[0],
            Tags {
                temporal: true,
                spatial: true
            }
        );
        assert_eq!(
            tags[1],
            Tags {
                temporal: true,
                spatial: true
            }
        );
    }

    #[test]
    fn groups_do_not_cross_loop_nests() {
        // Z(k) in one loop and Z(k+11) in another are NOT a uniformly
        // generated group: neither loses its spatial tag.
        let mut p = Program::new("t");
        let k = p.var("k");
        let z = p.array("Z", &[64]);
        p.body(|s| {
            s.for_(k, 0, 32, |s| {
                s.read(z, &[idx(k)]);
            });
            s.for_(k, 0, 32, |s| {
                s.read(z, &[shift(k, 11)]);
            });
        });
        let tags = analyze(&p);
        assert!(tags[0].spatial, "no cross-nest demotion");
        assert!(tags[1].spatial);
        assert!(!tags[0].temporal, "no cross-nest group dependence");
    }

    #[test]
    fn block_loop_invariance_is_not_temporal() {
        // Blocked scan: DO jj step B { DO j2 = jj..jj+B { A(j2) } }.
        // A has coefficient 0 on jj, but jj shifts j2's range: there is
        // no reuse across jj iterations.
        let mut p = Program::new("t");
        let jj = p.var("jj");
        let j2 = p.var("j2");
        let a = p.array("A", &[64]);
        p.body(|s| {
            s.for_step(jj, 0, 64, 8, |s| {
                s.for_(j2, idx(jj), aff(&[(jj, 1)], 8), |s| {
                    s.read(a, &[idx(j2)]);
                });
            });
        });
        let tags = analyze(&p);
        assert!(!tags[0].temporal, "block loops do not create reuse");
        assert!(tags[0].spatial);
    }

    #[test]
    fn true_outer_invariance_is_temporal_despite_blocking() {
        // X(j2) in blocked MV: invariant in j1 (whose bounds are fixed),
        // even though the jj block loop shifts j2.
        let mut p = Program::new("t");
        let jj = p.var("jj");
        let j1 = p.var("j1");
        let j2 = p.var("j2");
        let x = p.array("X", &[64]);
        p.body(|s| {
            s.for_step(jj, 0, 64, 8, |s| {
                s.for_(j1, 0, 16, |s| {
                    s.for_(j2, idx(jj), aff(&[(jj, 1)], 8), |s| {
                        s.read(x, &[idx(j2)]);
                    });
                });
            });
        });
        assert!(analyze(&p)[0].temporal);
    }

    #[test]
    fn flattening_respects_column_major_strides() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[10, 20]);
        let mut flat = None;
        p.body(|s| {
            s.for_(i, 0, 10, |s| {
                s.for_(j, 0, 20, |s| {
                    s.read(a, &[idx(i), idx(j)]);
                });
            });
        });
        p.for_each_ref(|r| flat = flatten(&p, r));
        let flat = flat.expect("affine");
        assert_eq!(flat.coef_of(i), Coef::Known(1));
        assert_eq!(flat.coef_of(j), Coef::Known(10));
    }

    #[test]
    fn levels_track_stream_extent() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[1024]);
        let b = p.array("B", &[6]);
        p.body(|s| {
            s.for_(j, 0, 4, |s| {
                s.for_(i, 0, 1024, |s| {
                    s.read(a, &[idx(i)]); // 8 KB stream → level 3
                });
                s.for_(i, 0, 6, |s| {
                    s.read(b, &[idx(i)]); // 48 B stream → level 0
                });
            });
        });
        let levels = analyze_levels(&p);
        assert_eq!(levels, vec![3, 0]);
    }

    #[test]
    fn invariant_refs_take_the_outer_stream_level() {
        // A(k,j): invariant in the innermost i, streaming in j with
        // stride 1 over 16 iterations → 128 B → level 2.
        let mut p = Program::new("t");
        let j = p.var("j");
        let i = p.var("i");
        let a = p.array("A", &[64, 64]);
        p.body(|s| {
            s.for_(j, 0, 16, |s| {
                s.for_(i, 0, 64, |s| {
                    s.read(a, &[idx(j), lit(0)]);
                });
            });
        });
        assert_eq!(analyze_levels(&p), vec![2]);
    }

    #[test]
    fn unknown_trips_yield_default_level() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[64]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.for_(j, idx(i), 64, |s| {
                    s.read(a, &[idx(j)]);
                });
            });
        });
        assert_eq!(analyze_levels(&p), vec![0]);
    }

    #[test]
    fn blocked_loop_spans_give_levels() {
        // j in jj..jj+32: trip 32 → a 256 B stream → level 3, even though
        // the bounds are not constants.
        let mut p = Program::new("t");
        let jj = p.var("jj");
        let j = p.var("j");
        let a = p.array("A", &[256]);
        p.body(|s| {
            s.for_step(jj, 0, 256, 32, |s| {
                s.for_(j, idx(jj), aff(&[(jj, 1)], 32), |s| {
                    s.read(a, &[idx(j)]);
                });
            });
        });
        assert_eq!(analyze_levels(&p), vec![3]);
    }

    #[test]
    fn negative_direction_stride_counts_by_magnitude() {
        // A(N-1-i): coefficient −1 → |−1| < 4 → spatial.
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[64]);
        p.body(|s| {
            s.for_(i, 0, 64, |s| {
                s.read(a, &[aff(&[(i, -1)], 63)]);
            });
        });
        assert!(analyze(&p)[0].spatial);
    }
}
