//! Source-level loop transformations.
//!
//! The paper sits on top of a decade of data-locality work (Wolf & Lam,
//! McKinley, Lam/Rothberg/Wolf): compilers reorder loops to create the
//! locality that the tags then describe. This module provides the two
//! transformations the paper's discussion leans on:
//!
//! * **interchange** — fixes the "badly ordered loops, inducing non
//!   stride-one references" the paper blames for part of the Perfect
//!   Club's poor tag coverage (§3.2);
//! * **strip-mining** — the building block of blocking (§4.2): a loop is
//!   split into a block loop and an element loop so a data slice is
//!   reused while resident.
//!
//! Transformations rebuild the statement tree; reference ids are
//! renumbered in the new program order, and the analysis is simply rerun
//! on the result — tags always describe the transformed code.
//!
//! Legality is the caller's responsibility (as in the paper, where the
//! optimizer decides what is safe); these functions only check
//! *structural* applicability and return [`TransformError`] otherwise.

use crate::expr::{aff, AffineExpr, VarId};
use crate::program::{Bound, Program, Stmt};
use std::fmt;

/// Why a transformation could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The requested loop variable was not found.
    LoopNotFound(String),
    /// The two loops are not perfectly nested (statements sit between
    /// them), so interchange would change the computation.
    NotPerfectlyNested(String),
    /// A loop's bounds depend on the other loop's variable; interchange
    /// of triangular nests is not supported.
    DependentBounds(String),
    /// Strip-mining needs a constant-bound loop whose trip count the
    /// block size divides.
    BadStrip(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::LoopNotFound(v) => write!(f, "no loop over '{v}'"),
            TransformError::NotPerfectlyNested(v) => {
                write!(f, "loop over '{v}' is not perfectly nested in its parent")
            }
            TransformError::DependentBounds(v) => {
                write!(f, "bounds of the nest around '{v}' are interdependent")
            }
            TransformError::BadStrip(m) => write!(f, "cannot strip-mine: {m}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl Program {
    /// Interchanges the loop over `outer` with the loop over `inner`,
    /// which must be its immediate and only child (a perfect nest with
    /// independent bounds). Returns a new program; `self` is unchanged.
    ///
    /// ```
    /// use sac_loopir::{idx, Program};
    ///
    /// // A(i,j) with j innermost strides by the leading dimension...
    /// let mut p = Program::new("t");
    /// let i = p.var("i");
    /// let j = p.var("j");
    /// let a = p.array("A", &[64, 64]);
    /// p.body(|s| {
    ///     s.for_(i, 0, 64, |s| {
    ///         s.for_(j, 0, 64, |s| {
    ///             s.read(a, &[idx(i), idx(j)]);
    ///         });
    ///     });
    /// });
    /// assert!(!p.analyze()[0].spatial);
    /// // ...interchange makes it stride-1 and the spatial tag appears.
    /// let q = p.interchanged(i, j).unwrap();
    /// assert!(q.analyze()[0].spatial);
    /// ```
    ///
    /// # Errors
    ///
    /// Structural failures only — see [`TransformError`].
    pub fn interchanged(&self, outer: VarId, inner: VarId) -> Result<Program, TransformError> {
        let mut clone = self.clone_shell();
        let mut body = self.stmts().to_vec();
        interchange_in(&mut body, outer, inner, self)?;
        clone.replace_body(body);
        Ok(clone)
    }

    /// Strip-mines the loop over `var` by `block`: `DO v = lo,hi` becomes
    /// `DO vv = lo,hi,B { DO v = vv,vv+B }`. The block loop runs over the
    /// fresh variable returned alongside the program.
    ///
    /// # Errors
    ///
    /// The loop must have constant bounds whose span `block` divides.
    pub fn strip_mined(
        &self,
        var: VarId,
        block: i64,
        block_var_name: &str,
    ) -> Result<(Program, VarId), TransformError> {
        if block <= 0 {
            return Err(TransformError::BadStrip("block must be positive".into()));
        }
        let mut clone = self.clone_shell();
        let block_var = clone.var(block_var_name);
        let mut body = self.stmts().to_vec();
        strip_in(&mut body, var, block, block_var, self)?;
        clone.replace_body(body);
        Ok((clone, block_var))
    }
}

impl Program {
    /// Distributes (fissions) the loop over `var`: each top-level
    /// statement of its body gets its own copy of the loop, in order.
    /// The classic enabling transformation for interchange and fusion
    /// decisions in locality optimizers.
    ///
    /// ```
    /// use sac_loopir::{idx, Program};
    ///
    /// let mut p = Program::new("t");
    /// let i = p.var("i");
    /// let a = p.array("A", &[8]);
    /// let b = p.array("B", &[8]);
    /// p.body(|s| {
    ///     s.for_(i, 0, 8, |s| {
    ///         s.read(a, &[idx(i)]);
    ///         s.write(b, &[idx(i)]);
    ///     });
    /// });
    /// let q = p.distributed(i).unwrap();
    /// // Two separate loops now: A's sweep completes before B's starts.
    /// let addrs: Vec<u64> = q.trace_default().iter().map(|x| x.addr()).collect();
    /// assert!(addrs[..8].iter().all(|&a| a < 64), "A first");
    /// ```
    ///
    /// # Errors
    ///
    /// Fails structurally when the loop is missing or its body has fewer
    /// than two statements to distribute over.
    pub fn distributed(&self, var: VarId) -> Result<Program, TransformError> {
        let mut clone = self.clone_shell();
        let mut body = self.stmts().to_vec();
        distribute_in(&mut body, var, self)?;
        clone.replace_body(body);
        Ok(clone)
    }
}

fn distribute_in(stmts: &mut Vec<Stmt>, var: VarId, p: &Program) -> Result<(), TransformError> {
    for (pos, s) in stmts.iter_mut().enumerate() {
        if let Stmt::For {
            var: v,
            lo,
            hi,
            step,
            opaque,
            body,
        } = s
        {
            if *v == var {
                if body.len() < 2 {
                    return Err(TransformError::NotPerfectlyNested(var_name(p, var)));
                }
                let (lo, hi, step, opaque) = (lo.clone(), hi.clone(), *step, *opaque);
                let pieces: Vec<Stmt> = std::mem::take(body)
                    .into_iter()
                    .map(|inner| Stmt::For {
                        var,
                        lo: lo.clone(),
                        hi: hi.clone(),
                        step,
                        opaque,
                        body: vec![inner],
                    })
                    .collect();
                stmts.splice(pos..=pos, pieces);
                return Ok(());
            }
            match distribute_in(body, var, p) {
                Ok(()) => return Ok(()),
                Err(TransformError::LoopNotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
    }
    Err(TransformError::LoopNotFound(var_name(p, var)))
}

fn var_name(p: &Program, v: VarId) -> String {
    p.var_names()
        .get(v.index())
        .cloned()
        .unwrap_or_else(|| format!("v{}", v.index()))
}

fn interchange_in(
    stmts: &mut [Stmt],
    outer: VarId,
    inner: VarId,
    p: &Program,
) -> Result<(), TransformError> {
    for s in stmts.iter_mut() {
        if let Stmt::For {
            var,
            body,
            lo,
            hi,
            step,
            ..
        } = s
        {
            if *var == outer {
                // The inner loop must be the body's only statement.
                if body.len() != 1 {
                    return Err(TransformError::NotPerfectlyNested(var_name(p, inner)));
                }
                let Stmt::For {
                    var: ivar,
                    lo: ilo,
                    hi: ihi,
                    ..
                } = &body[0]
                else {
                    return Err(TransformError::NotPerfectlyNested(var_name(p, inner)));
                };
                if *ivar != inner {
                    return Err(TransformError::LoopNotFound(var_name(p, inner)));
                }
                if bound_mentions(ilo, outer)
                    || bound_mentions(ihi, outer)
                    || bound_mentions(lo, inner)
                    || bound_mentions(hi, inner)
                {
                    return Err(TransformError::DependentBounds(var_name(p, inner)));
                }
                // Swap the (var, lo, hi, step) headers; keep the tree.
                let Stmt::For {
                    var: ivar,
                    lo: ilo,
                    hi: ihi,
                    step: istep,
                    ..
                } = &mut body[0]
                else {
                    unreachable!("checked above");
                };
                std::mem::swap(var, ivar);
                std::mem::swap(lo, ilo);
                std::mem::swap(hi, ihi);
                std::mem::swap(step, istep);
                return Ok(());
            }
            match interchange_in(body, outer, inner, p) {
                Ok(()) => return Ok(()),
                Err(TransformError::LoopNotFound(_)) => {} // keep scanning siblings
                Err(e) => return Err(e),
            }
        }
    }
    Err(TransformError::LoopNotFound(var_name(p, outer)))
}

fn strip_in(
    stmts: &mut [Stmt],
    var: VarId,
    block: i64,
    block_var: VarId,
    p: &Program,
) -> Result<(), TransformError> {
    for s in stmts.iter_mut() {
        if let Stmt::For {
            var: v,
            lo,
            hi,
            step,
            opaque,
            body,
        } = s
        {
            if *v == var {
                if *step != 1 {
                    return Err(TransformError::BadStrip("loop must have step 1".into()));
                }
                let (Some(lo_c), Some(hi_c)) = (const_bound(lo), const_bound(hi)) else {
                    return Err(TransformError::BadStrip(
                        "loop bounds must be constants".into(),
                    ));
                };
                let span = hi_c - lo_c;
                if span <= 0 || span % block != 0 {
                    return Err(TransformError::BadStrip(format!(
                        "block {block} must divide the span {span}"
                    )));
                }
                let element = Stmt::For {
                    var,
                    lo: Bound::Affine(AffineExpr::var(block_var)),
                    hi: Bound::Affine(aff(&[(block_var, 1)], block)),
                    step: 1,
                    opaque: *opaque,
                    body: std::mem::take(body),
                };
                *s = Stmt::For {
                    var: block_var,
                    lo: Bound::Affine(AffineExpr::constant(lo_c)),
                    hi: Bound::Affine(AffineExpr::constant(hi_c)),
                    step: block,
                    opaque: false,
                    body: vec![element],
                };
                return Ok(());
            }
            if let Stmt::For { body, .. } = s {
                match strip_in(body, var, block, block_var, p) {
                    Ok(()) => return Ok(()),
                    Err(TransformError::LoopNotFound(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Err(TransformError::LoopNotFound(var_name(p, var)))
}

fn const_bound(b: &Bound) -> Option<i64> {
    match b {
        Bound::Affine(e) if e.terms().is_empty() => Some(e.constant_term()),
        _ => None,
    }
}

fn bound_mentions(b: &Bound, v: VarId) -> bool {
    let e = match b {
        Bound::Affine(e) => e,
        Bound::Table { index, .. } => index,
    };
    e.terms().iter().any(|&(tv, _)| tv == v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::idx;
    use crate::TraceOptions;

    fn ij_program() -> (Program, VarId, VarId) {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[16, 16]);
        p.body(|s| {
            s.for_(i, 0, 16, |s| {
                s.for_(j, 0, 16, |s| {
                    s.read(a, &[idx(i), idx(j)]);
                });
            });
        });
        (p, i, j)
    }

    #[test]
    fn interchange_flips_the_stride() {
        let (p, i, j) = ij_program();
        // Column-major A(i,j): i inner would be stride-1; j inner is not.
        assert!(!p.analyze()[0].spatial);
        let q = p.interchanged(i, j).unwrap();
        assert!(q.analyze()[0].spatial);
        // The transformed program touches exactly the same addresses.
        let opts = TraceOptions {
            seed: 0,
            gaps: false,
            levels: false,
        };
        let mut a: Vec<u64> = p.trace(&opts).unwrap().iter().map(|x| x.addr()).collect();
        let mut b: Vec<u64> = q.trace(&opts).unwrap().iter().map(|x| x.addr()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn interchange_requires_a_perfect_nest() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[16, 16]);
        let y = p.array("Y", &[16]);
        p.body(|s| {
            s.for_(i, 0, 16, |s| {
                s.read(y, &[idx(i)]); // statement between the loops
                s.for_(j, 0, 16, |s| {
                    s.read(a, &[idx(i), idx(j)]);
                });
            });
        });
        assert!(matches!(
            p.interchanged(i, j),
            Err(TransformError::NotPerfectlyNested(_))
        ));
    }

    #[test]
    fn interchange_rejects_triangular_nests() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let j = p.var("j");
        let a = p.array("A", &[16, 16]);
        p.body(|s| {
            s.for_(i, 0, 16, |s| {
                s.for_(j, idx(i), 16, |s| {
                    s.read(a, &[idx(j), idx(i)]);
                });
            });
        });
        assert!(matches!(
            p.interchanged(i, j),
            Err(TransformError::DependentBounds(_))
        ));
    }

    #[test]
    fn strip_mining_preserves_the_iteration_space() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[64]);
        p.body(|s| {
            s.for_(i, 0, 64, |s| {
                s.read(a, &[idx(i)]);
            });
        });
        let (q, _bv) = p.strip_mined(i, 16, "ii").unwrap();
        let opts = TraceOptions {
            seed: 0,
            gaps: false,
            levels: false,
        };
        let a0: Vec<u64> = p.trace(&opts).unwrap().iter().map(|x| x.addr()).collect();
        let a1: Vec<u64> = q.trace(&opts).unwrap().iter().map(|x| x.addr()).collect();
        assert_eq!(a0, a1, "strip-mining is order-preserving");
        assert_eq!(q.validate(), crate::Verdict::Ok);
    }

    #[test]
    fn strip_mining_enables_blocked_reuse_tags() {
        // MV: strip-mining j2 then (conceptually) hoisting creates the
        // blocked form; here we check the strip itself keeps X temporal.
        let mut p = Program::new("mv");
        let j1 = p.var("j1");
        let j2 = p.var("j2");
        let a = p.array("A", &[32, 32]);
        let x = p.array("X", &[32]);
        p.body(|s| {
            s.for_(j1, 0, 32, |s| {
                s.for_(j2, 0, 32, |s| {
                    s.read(a, &[idx(j2), idx(j1)]);
                    s.read(x, &[idx(j2)]);
                });
            });
        });
        let (q, _) = p.strip_mined(j2, 8, "jj").unwrap();
        let tags = q.analyze();
        assert!(tags[1].temporal, "X stays invariant in j1");
        assert!(!tags[0].temporal, "A gains no reuse from the strip");
    }

    #[test]
    fn strip_mining_rejects_non_dividing_blocks() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[10]);
        p.body(|s| {
            s.for_(i, 0, 10, |s| {
                s.read(a, &[idx(i)]);
            });
        });
        assert!(matches!(
            p.strip_mined(i, 3, "ii"),
            Err(TransformError::BadStrip(_))
        ));
        assert!(matches!(
            p.strip_mined(i, 0, "ii"),
            Err(TransformError::BadStrip(_))
        ));
    }

    #[test]
    fn distribution_preserves_per_statement_address_sets() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[16]);
        let b = p.array("B", &[16]);
        p.body(|s| {
            s.for_(i, 0, 16, |s| {
                s.read(a, &[idx(i)]);
                s.write(b, &[idx(i)]);
            });
        });
        let q = p.distributed(i).unwrap();
        assert_eq!(q.ref_count(), 2);
        let opts = TraceOptions {
            seed: 0,
            gaps: false,
            levels: false,
        };
        let mut orig: Vec<u64> = p.trace(&opts).unwrap().iter().map(|x| x.addr()).collect();
        let mut dist: Vec<u64> = q.trace(&opts).unwrap().iter().map(|x| x.addr()).collect();
        orig.sort_unstable();
        dist.sort_unstable();
        assert_eq!(orig, dist);
    }

    #[test]
    fn distribution_needs_two_statements() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let a = p.array("A", &[8]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.read(a, &[idx(i)]);
            });
        });
        assert!(matches!(
            p.distributed(i),
            Err(TransformError::NotPerfectlyNested(_))
        ));
    }

    #[test]
    fn transforms_compose_into_the_blocked_form() {
        // Plain inner-product MV core → strip-mine j2 → interchange j1/jj
        // yields exactly the §4.2 blocked loop shape, and the analysis
        // rediscovers the blocked tags (X temporal, A not).
        let n = 32;
        let mut p = Program::new("mv-core");
        let j1 = p.var("j1");
        let j2 = p.var("j2");
        let a = p.array("A", &[n, n]);
        let x = p.array("X", &[n]);
        p.body(|s| {
            s.for_(j1, 0, n, |s| {
                s.for_(j2, 0, n, |s| {
                    s.read(a, &[idx(j2), idx(j1)]);
                    s.read(x, &[idx(j2)]);
                });
            });
        });
        let (stripped, jj) = p.strip_mined(j2, 8, "jj").unwrap();
        let blocked = stripped.interchanged(j1, jj).unwrap();
        let tags = blocked.analyze();
        assert!(!tags[0].temporal && tags[0].spatial, "A: stream");
        assert!(tags[1].temporal && tags[1].spatial, "X: blocked reuse");
        // Same address multiset as the original.
        let opts = TraceOptions {
            seed: 0,
            gaps: false,
            levels: false,
        };
        let mut orig: Vec<u64> = p.trace(&opts).unwrap().iter().map(|x| x.addr()).collect();
        let mut blk: Vec<u64> = blocked
            .trace(&opts)
            .unwrap()
            .iter()
            .map(|x| x.addr())
            .collect();
        orig.sort_unstable();
        blk.sort_unstable();
        assert_eq!(orig, blk);
        assert_eq!(blocked.validate(), crate::Verdict::Ok);
    }

    #[test]
    fn missing_loops_are_reported() {
        let (p, i, _) = ij_program();
        let mut other = Program::new("o");
        let k = other.var("k");
        assert!(matches!(
            p.interchanged(k, i),
            Err(TransformError::LoopNotFound(_))
        ));
    }
}
