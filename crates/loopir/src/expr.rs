//! Affine expressions over loop variables.

use std::fmt;

/// Identifier of a loop variable, issued by [`crate::Program::var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The variable's index in its program's registry.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A subscript coefficient as seen by the compiler.
///
/// The paper's spatial rule only fires when the innermost coefficient is a
/// *known* constant: "if the coefficient is a parameter, the reference is
/// not tagged spatial". [`Coef::Param`] carries the runtime value (needed to
/// interpret the program) while telling the analysis that the value is
/// unknown at compile time — this models dusty-deck codes whose subscripts
/// alias loop variables through parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coef {
    /// A compile-time-known coefficient.
    Known(i64),
    /// A coefficient whose value is only known at run time.
    Param(i64),
}

impl Coef {
    /// The runtime value (used by the interpreter).
    pub fn value(self) -> i64 {
        match self {
            Coef::Known(v) | Coef::Param(v) => v,
        }
    }

    /// The compile-time value, if the compiler can see it.
    pub fn known(self) -> Option<i64> {
        match self {
            Coef::Known(v) => Some(v),
            Coef::Param(_) => None,
        }
    }
}

impl From<i64> for Coef {
    fn from(v: i64) -> Self {
        Coef::Known(v)
    }
}

/// An affine expression `Σ cᵢ·varᵢ + k` used for subscripts and loop bounds.
///
/// ```
/// use sac_loopir::{aff, AffineExpr, Program};
///
/// let mut p = Program::new("t");
/// let i = p.var("i");
/// let e = aff(&[(i, 3)], 5); // 3*i + 5
/// assert_eq!(e.eval(&[2]), 11);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    terms: Vec<(VarId, Coef)>,
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `k`.
    pub fn constant(k: i64) -> Self {
        AffineExpr {
            terms: Vec::new(),
            constant: k,
        }
    }

    /// The expression `1·v`.
    pub fn var(v: VarId) -> Self {
        AffineExpr {
            terms: vec![(v, Coef::Known(1))],
            constant: 0,
        }
    }

    /// Builds `Σ cᵢ·varᵢ + k` from `(var, coef)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same variable appears twice.
    pub fn new(terms: &[(VarId, Coef)], constant: i64) -> Self {
        let mut seen: Vec<VarId> = Vec::new();
        for &(v, _) in terms {
            assert!(
                !seen.contains(&v),
                "duplicate variable in affine expression"
            );
            seen.push(v);
        }
        AffineExpr {
            terms: terms.to_vec(),
            constant,
        }
    }

    /// Adds a term (builder style).
    pub fn plus_term(mut self, v: VarId, c: impl Into<Coef>) -> Self {
        assert!(
            !self.terms.iter().any(|&(tv, _)| tv == v),
            "duplicate variable in affine expression"
        );
        self.terms.push((v, c.into()));
        self
    }

    /// Adds a constant (builder style).
    pub fn plus(mut self, k: i64) -> Self {
        self.constant += k;
        self
    }

    /// The constant term `k`.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// The terms `(var, coef)` in insertion order.
    pub fn terms(&self) -> &[(VarId, Coef)] {
        &self.terms
    }

    /// The coefficient of `v` (a known 0 when absent).
    pub fn coef_of(&self, v: VarId) -> Coef {
        self.terms
            .iter()
            .find(|&&(tv, _)| tv == v)
            .map(|&(_, c)| c)
            .unwrap_or(Coef::Known(0))
    }

    /// Evaluates the expression in an environment indexed by [`VarId`].
    ///
    /// # Panics
    ///
    /// Panics if a variable's id is out of range for `env`.
    pub fn eval(&self, env: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            acc += c.value() * env[v.0];
        }
        acc
    }

    /// Scales every coefficient and the constant by `s`.
    pub fn scaled(&self, s: i64) -> Self {
        AffineExpr {
            terms: self
                .terms
                .iter()
                .map(|&(v, c)| {
                    let scaled = match c {
                        Coef::Known(k) => Coef::Known(k * s),
                        Coef::Param(k) => Coef::Param(k * s),
                    };
                    (v, scaled)
                })
                .collect(),
            constant: self.constant * s,
        }
    }

    /// Sums two expressions (used to flatten multi-dimensional subscripts).
    pub fn plus_expr(&self, other: &AffineExpr) -> Self {
        let mut out = self.clone();
        out.constant += other.constant;
        for &(v, c) in &other.terms {
            if let Some(slot) = out.terms.iter_mut().find(|(tv, _)| *tv == v) {
                slot.1 = match (slot.1, c) {
                    (Coef::Known(a), Coef::Known(b)) => Coef::Known(a + b),
                    // Any Param contamination keeps the sum a Param.
                    (a, b) => Coef::Param(a.value() + b.value()),
                };
            } else {
                out.terms.push((v, c));
            }
        }
        out
    }
}

impl From<i64> for AffineExpr {
    fn from(k: i64) -> Self {
        AffineExpr::constant(k)
    }
}

impl From<VarId> for AffineExpr {
    fn from(v: VarId) -> Self {
        AffineExpr::var(v)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(v, c) in &self.terms {
            if !first {
                f.write_str(" + ")?;
            }
            match c {
                Coef::Known(1) => write!(f, "v{}", v.0)?,
                Coef::Known(k) => write!(f, "{k}*v{}", v.0)?,
                Coef::Param(k) => write!(f, "p({k})*v{}", v.0)?,
            }
            first = false;
        }
        if self.constant != 0 || first {
            if !first {
                f.write_str(" + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// Shorthand for the subscript `v` (coefficient 1, constant 0).
pub fn idx(v: VarId) -> AffineExpr {
    AffineExpr::var(v)
}

/// Shorthand for the subscript `v + k` (e.g. `B(J, I+1)`).
pub fn shift(v: VarId, k: i64) -> AffineExpr {
    AffineExpr::var(v).plus(k)
}

/// Shorthand for the constant subscript `k`.
pub fn lit(k: i64) -> AffineExpr {
    AffineExpr::constant(k)
}

/// Shorthand for `Σ cᵢ·varᵢ + k` with known coefficients.
pub fn aff(terms: &[(VarId, i64)], k: i64) -> AffineExpr {
    let terms: Vec<(VarId, Coef)> = terms.iter().map(|&(v, c)| (v, Coef::Known(c))).collect();
    AffineExpr::new(&terms, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn eval_affine() {
        let e = aff(&[(v(0), 2), (v(1), -3)], 7);
        assert_eq!(e.eval(&[5, 4]), 2 * 5 - 3 * 4 + 7);
    }

    #[test]
    fn coef_of_absent_var_is_zero() {
        let e = aff(&[(v(0), 2)], 0);
        assert_eq!(e.coef_of(v(1)), Coef::Known(0));
        assert_eq!(e.coef_of(v(0)), Coef::Known(2));
    }

    #[test]
    fn scaled_multiplies_everything() {
        let e = aff(&[(v(0), 2)], 3).scaled(4);
        assert_eq!(e.coef_of(v(0)), Coef::Known(8));
        assert_eq!(e.constant_term(), 12);
    }

    #[test]
    fn plus_expr_merges_terms() {
        let a = aff(&[(v(0), 1), (v(1), 2)], 3);
        let b = aff(&[(v(1), 5), (v(2), 1)], -1);
        let s = a.plus_expr(&b);
        assert_eq!(s.coef_of(v(0)), Coef::Known(1));
        assert_eq!(s.coef_of(v(1)), Coef::Known(7));
        assert_eq!(s.coef_of(v(2)), Coef::Known(1));
        assert_eq!(s.constant_term(), 2);
    }

    #[test]
    fn param_contaminates_sum() {
        let a = AffineExpr::new(&[(v(0), Coef::Param(2))], 0);
        let b = aff(&[(v(0), 3)], 0);
        let s = a.plus_expr(&b);
        assert_eq!(s.coef_of(v(0)), Coef::Param(5));
        assert_eq!(s.coef_of(v(0)).known(), None);
        assert_eq!(s.coef_of(v(0)).value(), 5);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_variable_panics() {
        let _ = aff(&[(v(0), 1), (v(0), 2)], 0);
    }

    #[test]
    fn display_is_readable() {
        let e = aff(&[(v(0), 3)], 5);
        assert_eq!(e.to_string(), "3*v0 + 5");
        assert_eq!(lit(0).to_string(), "0");
    }

    #[test]
    fn shorthands() {
        let i = v(1);
        assert_eq!(idx(i).eval(&[0, 9]), 9);
        assert_eq!(shift(i, 4).eval(&[0, 9]), 13);
        assert_eq!(lit(6).eval(&[]), 6);
    }
}
