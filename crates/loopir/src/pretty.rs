//! Fortran-style pretty-printing of loop-nest programs, with the
//! analysis' tag bits annotated per reference — the textual equivalent of
//! the paper's instrumented listing (Figure 5).

use crate::analysis_impl::analyze;
use crate::expr::{AffineExpr, Coef};
use crate::program::{Bound, Program, RefStmt, Stmt, Subscript};
use sac_trace::AccessKind;
use std::fmt::Write as _;

impl Program {
    /// Renders the program as an annotated Fortran-like listing.
    ///
    /// Each reference line shows the temporal/spatial bits the analysis
    /// derives, in the same `(read/write, temporal, spatial)` spirit as
    /// the paper's `call trace(...)` instrumentation.
    ///
    /// ```
    /// use sac_loopir::{idx, Program};
    ///
    /// let mut p = Program::new("demo");
    /// let i = p.var("i");
    /// let a = p.array("A", &[8]);
    /// p.body(|s| {
    ///     s.for_(i, 0, 8, |s| {
    ///         s.read(a, &[idx(i)]);
    ///     });
    /// });
    /// let text = p.to_pseudocode();
    /// assert!(text.contains("DO i = 0, 7"));
    /// assert!(text.contains("A(i)"));
    /// assert!(text.contains("t=0 s=1"));
    /// ```
    pub fn to_pseudocode(&self) -> String {
        let tags = analyze(self);
        let mut out = String::new();
        let _ = writeln!(out, "PROGRAM {}", self.name());
        for a in self.arrays() {
            let dims: Vec<String> = a.dims().iter().map(|d| d.to_string()).collect();
            let _ = writeln!(
                out,
                "  REAL*8 {}({})  ! base {:#x}",
                a.name(),
                dims.join(","),
                a.base()
            );
        }
        self.render(self.stmts(), 1, &tags, &mut out);
        let _ = writeln!(out, "END");
        out
    }

    fn render(&self, stmts: &[Stmt], depth: usize, tags: &[crate::Tags], out: &mut String) {
        let pad = "  ".repeat(depth);
        for s in stmts {
            match s {
                Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    opaque,
                    body,
                } => {
                    let driver = if *opaque {
                        "  ! driver (opaque to analysis)"
                    } else {
                        ""
                    };
                    let step_s = if *step == 1 {
                        String::new()
                    } else {
                        format!(", {step}")
                    };
                    let _ = writeln!(
                        out,
                        "{pad}DO {} = {}, {}{}{}",
                        self.var_name(*var),
                        self.bound_str(lo),
                        self.upper_bound_str(hi, *step),
                        step_s,
                        driver
                    );
                    self.render(body, depth + 1, tags, out);
                    let _ = writeln!(out, "{pad}ENDDO");
                }
                Stmt::Ref(r) => {
                    let t = tags[r.id().index()];
                    let op = match r.kind() {
                        AccessKind::Read => "load ",
                        AccessKind::Write => "store",
                    };
                    let forced = if r.forced_tags().is_some() {
                        "  ! user directive"
                    } else {
                        ""
                    };
                    let _ = writeln!(
                        out,
                        "{pad}{op} {:<24} ! t={} s={}{forced}",
                        self.ref_str(r),
                        u8::from(t.temporal),
                        u8::from(t.spatial),
                    );
                }
                Stmt::Call => {
                    let _ = writeln!(out, "{pad}CALL <subroutine>  ! kills tags in this body");
                }
            }
        }
    }

    fn var_name(&self, v: crate::VarId) -> String {
        self.var_names()
            .get(v.index())
            .cloned()
            .unwrap_or_else(|| format!("v{}", v.index()))
    }

    fn ref_str(&self, r: &RefStmt) -> String {
        let subs: Vec<String> = r
            .subscripts()
            .iter()
            .map(|s| match s {
                Subscript::Affine(e) => self.expr_str(e),
                Subscript::Indirect { table, index } => {
                    format!("Index{}({})", table_idx(*table), self.expr_str(index))
                }
            })
            .collect();
        format!("{}({})", self.array_decl(r.array()).name(), subs.join(","))
    }

    fn bound_str(&self, b: &Bound) -> String {
        match b {
            Bound::Affine(e) => self.expr_str(e),
            Bound::Table { table, index } => {
                format!("T{}({})", table_idx(*table), self.expr_str(index))
            }
        }
    }

    /// Upper bounds are exclusive in the IR; Fortran DO bounds are
    /// inclusive, so constant ascending bounds print as `hi-1`.
    fn upper_bound_str(&self, b: &Bound, step: i64) -> String {
        if step > 0 {
            if let Bound::Affine(e) = b {
                if e.terms().is_empty() {
                    return (e.constant_term() - 1).to_string();
                }
            }
        }
        format!(
            "{}{}",
            self.bound_str(b),
            if step > 0 { "-1" } else { "+1" }
        )
    }

    fn expr_str(&self, e: &AffineExpr) -> String {
        let mut parts = Vec::new();
        for &(v, c) in e.terms() {
            match c {
                Coef::Known(0) => {}
                Coef::Known(1) => parts.push(self.var_name(v)),
                Coef::Known(k) => parts.push(format!("{k}*{}", self.var_name(v))),
                Coef::Param(k) => parts.push(format!("P[{k}]*{}", self.var_name(v))),
            }
        }
        let k = e.constant_term();
        if parts.is_empty() {
            return k.to_string();
        }
        let mut s = parts.join("+");
        if k > 0 {
            let _ = write!(s, "+{k}");
        } else if k < 0 {
            let _ = write!(s, "{k}");
        }
        s
    }
}

fn table_idx(t: crate::TableId) -> usize {
    t.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{idx, shift};

    #[test]
    fn fig5_listing_shows_the_paper_bits() {
        let mut p = Program::new("fig5");
        let i = p.var("I");
        let j = p.var("J");
        let b = p.array("B", &[8, 9]);
        p.body(|s| {
            s.for_(i, 0, 8, |s| {
                s.for_(j, 0, 8, |s| {
                    s.read(b, &[idx(j), idx(i)]);
                    s.read(b, &[idx(j), shift(i, 1)]);
                });
            });
        });
        let text = p.to_pseudocode();
        assert!(text.contains("DO I = 0, 7"));
        assert!(text.contains("B(J,I) "), "{text}");
        assert!(text.contains("B(J,I+1)"), "{text}");
        // B(J,I): temporal, no spatial; B(J,I+1): temporal, spatial.
        let lines: Vec<&str> = text.lines().collect();
        let l1 = lines.iter().find(|l| l.contains("B(J,I) ")).unwrap();
        let l2 = lines.iter().find(|l| l.contains("B(J,I+1)")).unwrap();
        assert!(l1.contains("t=1 s=0"), "{l1}");
        assert!(l2.contains("t=1 s=1"), "{l2}");
    }

    #[test]
    fn driver_loops_and_calls_are_marked() {
        let mut p = Program::new("t");
        let t = p.var("t");
        let i = p.var("i");
        let a = p.array("A", &[8]);
        p.body(|s| {
            s.for_driver(t, 0, 3, |s| {
                s.for_(i, 0, 8, |s| {
                    s.read(a, &[idx(i)]);
                    s.call();
                });
            });
        });
        let text = p.to_pseudocode();
        assert!(text.contains("driver"));
        assert!(text.contains("CALL"));
        assert!(text.contains("t=0 s=0"), "killed tags shown: {text}");
    }

    #[test]
    fn directives_are_marked() {
        let mut p = Program::new("t");
        let i = p.var("i");
        let x = p.array("X", &[64]);
        let tab = p.table((0..64).collect());
        p.body(|s| {
            s.for_(i, 0, 64, |s| {
                s.read_tagged(x, vec![crate::indirect(tab, idx(i))], true, false);
            });
        });
        let text = p.to_pseudocode();
        assert!(text.contains("user directive"), "{text}");
        assert!(text.contains("Index0(i)"), "{text}");
    }
}
