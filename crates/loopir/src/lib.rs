//! Loop-nest IR, locality analysis and trace generation.
//!
//! The paper extracts its software hints with *simple* compiler techniques:
//! a reference is tagged **spatial** when the coefficient of the innermost
//! loop variable in its subscript is a known constant smaller than 4
//! elements (one 32-byte line of doubles), and **temporal** when it carries
//! a temporal self-dependence or a uniformly generated group dependence.
//! A loop body containing a `CALL` loses all its tags (no interprocedural
//! analysis). The instrumented source then emits one trace entry per
//! reference (the paper used Sage++ for this; see Figure 5).
//!
//! This crate reproduces that pipeline on a small loop-nest IR:
//!
//! * [`Program`] — arrays (column-major, explicit base addresses and
//!   leading dimensions), host-side integer tables for indirect accesses,
//!   and a statement tree of loops, references and calls;
//! * [`analysis`] — the tagging rules above, including the group-leader
//!   refinement visible in the paper's Figure 5 (within a uniformly
//!   generated group only the leading reference keeps its spatial tag);
//! * [`Program::trace`] — an interpreter that walks the nest and emits a
//!   [`sac_trace::Trace`] with tags and Figure-4b issue gaps attached.
//!
//! # Example: the paper's Figure 5 loop
//!
//! ```
//! use sac_loopir::{Program, idx, shift};
//!
//! let mut p = Program::new("fig5");
//! let n = 8i64;
//! let i = p.var("I");
//! let j = p.var("J");
//! let a = p.array("A", &[n, n + 1]);
//! let b = p.array("B", &[n, n + 1]);
//! let x = p.array("X", &[n]);
//! let y = p.array("Y", &[n]);
//! p.body(|s| {
//!     s.for_(i, 0, n, |s| {
//!         s.for_(j, 0, n, |s| {
//!             s.read(a, &[idx(i), idx(j)]);
//!             s.read(b, &[idx(j), idx(i)]);
//!             s.read(b, &[idx(j), shift(i, 1)]);
//!             s.read(x, &[idx(j)]);
//!             s.read(y, &[idx(i)]);
//!             s.write(y, &[idx(i)]);
//!         });
//!     });
//! });
//! let tags = p.analyze();
//! // A(I,J): no temporal, no spatial (innermost coefficient is the leading
//! // dimension); B(J,I): temporal, no spatial (group follower);
//! // B(J,I+1): temporal, spatial (group leader); X(J), Y(I), Y(I)=:
//! // temporal, spatial — exactly the tag column of Figure 5.
//! let bits: Vec<(bool, bool)> = tags.iter().map(|t| (t.temporal, t.spatial)).collect();
//! assert_eq!(
//!     bits,
//!     vec![
//!         (false, false),
//!         (true, false),
//!         (true, true),
//!         (true, true),
//!         (true, true),
//!         (true, true),
//!     ]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis_impl;
mod expr;
mod interp;
mod pretty;
mod program;
mod transform;
mod validate;

pub mod analysis {
    //! Locality analysis: the paper's tagging rules.
    pub use crate::analysis_impl::{analyze, Tags};
}

pub use analysis_impl::Tags;
pub use expr::{aff, idx, lit, shift, AffineExpr, Coef, VarId};
pub use interp::{TraceError, TraceOptions};
pub use program::{
    indirect, ArrayDecl, ArrayId, BodyBuilder, Bound, Program, RefId, RefStmt, Stmt, Subscript,
    TableId,
};
pub use transform::TransformError;
pub use validate::{Verdict, Violation};
