//! Shared helpers for the per-figure Criterion benchmarks.
//!
//! Every bench target regenerates its figure's rows (printed to stdout,
//! so `cargo bench` reproduces the paper's series) and then times the
//! simulations behind it on the scaled-down suite.

use sac_experiments::{Suite, Table};
use std::sync::OnceLock;

/// The scaled-down benchmark suite, built once per bench process.
pub fn small_suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(Suite::small)
}

/// Prints a regenerated figure table under a banner.
pub fn print_figure(table: &Table) {
    println!("\n=== regenerated: {} ===", table.title());
    println!("{table}");
}
