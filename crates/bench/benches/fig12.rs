//! Figure 12 — hardware vs software-assisted prefetching.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_core::SoftCacheConfig;
use sac_experiments::{figures, Config};
use sac_simcache::{CacheGeometry, MemoryModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::fig12(suite));

    let trace = suite.trace("NAS").expect("NAS in suite");
    for (name, cfg) in [
        (
            "hw_prefetch",
            Config::HwPrefetch {
                geom: CacheGeometry::standard(),
                mem: MemoryModel::default(),
                lines: 8,
            },
        ),
        (
            "soft_prefetch",
            Config::Soft(SoftCacheConfig::soft().with_prefetch(true)),
        ),
    ] {
        c.bench_function(&format!("fig12/{name}_nas"), |b| {
            b.iter(|| black_box(cfg).run(black_box(trace)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
