//! Ablations of the design choices called out in DESIGN.md §7:
//! bounce-back size, associativity, admission policy, access time, and
//! 16-byte physical lines.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_core::SoftCacheConfig;
use sac_experiments::{figures, Config};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::ablation_bb_size(suite));
    print_figure(&figures::ablation_bb_ways(suite));
    print_figure(&figures::ablation_bb_policy(suite));
    print_figure(&figures::ablation_physical_16(suite));
    print_figure(&figures::ablation_associativity(suite));
    print_figure(&figures::ablation_bus_width(suite));

    let trace = suite.trace("MV").expect("MV in suite");
    for (name, cfg) in [
        (
            "bb4way",
            Config::Soft(SoftCacheConfig::soft().with_bounce_ways(Some(4))),
        ),
        (
            "temp_only_admission",
            Config::Soft(SoftCacheConfig::soft().with_admit_nontemporal(false)),
        ),
    ] {
        c.bench_function(&format!("ablation/{name}_mv"), |b| {
            b.iter(|| black_box(cfg).run(black_box(trace)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
