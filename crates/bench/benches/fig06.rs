//! Figure 6a/6b — the headline result: AMAT of the four software-control
//! variants and the main/bounce-back hit repartition.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_core::SoftCacheConfig;
use sac_experiments::{figures, Config};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::fig06a(suite));
    print_figure(&figures::fig06b(suite));

    let trace = suite.trace("MV").expect("MV in suite");
    for (name, cfg) in [
        ("standard", Config::standard()),
        (
            "temporal_only",
            Config::Soft(SoftCacheConfig::temporal_only()),
        ),
        (
            "spatial_only",
            Config::Soft(SoftCacheConfig::spatial_only()),
        ),
        ("soft", Config::soft()),
    ] {
        c.bench_function(&format!("fig06/{name}_mv"), |b| {
            b.iter(|| black_box(cfg).run(black_box(trace)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
