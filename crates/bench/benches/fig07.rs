//! Figure 7a/7b — memory traffic and miss ratio of the software-control
//! variants.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_experiments::{figures, Config};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::fig07a(suite));
    print_figure(&figures::fig07b(suite));

    let trace = suite.trace("SpMV").expect("SpMV in suite");
    c.bench_function("fig07/soft_spmv", |b| {
        b.iter(|| Config::soft().run(black_box(trace)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
