//! Figure 4a/4b — software-tag fractions and the issue-gap distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_experiments::figures;
use sac_trace::stats::TagFractions;
use sac_trace::GapModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::fig04a(suite));
    print_figure(&figures::fig04b());

    let trace = suite.trace("TRF").expect("TRF in suite");
    c.bench_function("fig04a/tag_fractions_trf", |b| {
        b.iter(|| TagFractions::of(black_box(trace)))
    });
    c.bench_function("fig04b/gap_sampling_100k", |b| {
        b.iter(|| {
            let mut g = GapModel::seeded(black_box(7));
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc += g.sample() as u64;
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
