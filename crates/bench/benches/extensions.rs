//! The paper's proposed extensions (§3.2 variable virtual lines, §4.4
//! prefetch distance) and the §5 related designs.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_core::SoftCacheConfig;
use sac_experiments::{figures, Config, Suite};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    let leveled = Suite::small_leveled();
    print_figure(&figures::ext_variable_vlines(&leveled));
    print_figure(&figures::ext_prefetch_distance(suite));
    print_figure(&figures::ext_related_designs(suite));
    print_figure(&figures::ext_related_traffic(suite));

    let trace = leveled.trace("MV").expect("MV in suite");
    c.bench_function("ext/variable_vlines_mv", |b| {
        b.iter(|| {
            Config::Soft(SoftCacheConfig::soft().with_variable_vlines(true)).run(black_box(trace))
        })
    });
    let plain = suite.trace("MV").expect("MV in suite");
    c.bench_function("ext/assist_mv", |b| {
        b.iter(|| {
            Config::Assist {
                geom: sac_simcache::CacheGeometry::standard(),
                mem: sac_simcache::MemoryModel::default(),
                lines: 16,
            }
            .run(black_box(plain))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
