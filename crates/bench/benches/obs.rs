//! Probe-layer overhead: the same engines over the same traces with no
//! probe attached (the default `NoopProbe`, which must be
//! indistinguishable from the pre-probe engines — its hooks const-fold
//! away), the minimal `CountingProbe`, and the full `TracingProbe`
//! telemetry stack. The noop/plain pair is the zero-cost claim; the
//! tracing rows document what full instrumentation costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sac_core::{SoftCache, SoftCacheConfig};
use sac_experiments::explain::{hit_heavy_trace, miss_heavy_trace};
use sac_obs::{CountingProbe, ObsConfig, Probe, TracingProbe};
use sac_simcache::{CacheGeometry, CacheSim, MemoryModel, Metrics, StandardCache, VictimCache};
use sac_trace::Trace;
use std::hint::black_box;

const LEN: usize = 200_000;

fn geom() -> CacheGeometry {
    CacheGeometry::new(8192, 32, 1)
}

fn run_standard<P: Probe>(probe: P, trace: &Trace) -> Metrics {
    let mut c = StandardCache::with_probe(geom(), MemoryModel::default(), probe);
    c.run_chunk(trace.as_slice());
    *c.metrics()
}

fn run_victim<P: Probe>(probe: P, trace: &Trace) -> Metrics {
    let mut c = VictimCache::with_probe(geom(), MemoryModel::default(), 8, probe);
    c.run_chunk(trace.as_slice());
    *c.metrics()
}

fn run_soft<P: Probe>(probe: P, trace: &Trace) -> Metrics {
    let mut c = SoftCache::with_probe(SoftCacheConfig::soft(), probe);
    c.run_chunk(trace.as_slice());
    *c.metrics()
}

fn tracing() -> TracingProbe {
    let g = geom();
    TracingProbe::new(ObsConfig::for_cache(g.lines(), g.sets(), g.line_bytes()).with_ring(4096, 16))
}

fn probe_overhead(c: &mut Criterion) {
    let shapes: Vec<(&str, Trace)> = vec![
        ("hit_heavy", hit_heavy_trace(LEN)),
        ("miss_heavy", miss_heavy_trace(LEN)),
    ];
    let mut group = c.benchmark_group("probe_overhead");
    group.sample_size(10);
    for (name, trace) in &shapes {
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::new("standard/plain", name), trace, |b, t| {
            b.iter(|| {
                let mut c = StandardCache::new(geom(), MemoryModel::default());
                c.run_chunk(black_box(t.as_slice()));
                *c.metrics()
            })
        });
        group.bench_with_input(BenchmarkId::new("standard/noop", name), trace, |b, t| {
            b.iter(|| run_standard(sac_obs::NoopProbe, black_box(t)))
        });
        group.bench_with_input(
            BenchmarkId::new("standard/counting", name),
            trace,
            |b, t| b.iter(|| run_standard(CountingProbe::default(), black_box(t))),
        );
        group.bench_with_input(BenchmarkId::new("standard/tracing", name), trace, |b, t| {
            b.iter(|| run_standard(tracing(), black_box(t)))
        });
        group.bench_with_input(BenchmarkId::new("victim/plain", name), trace, |b, t| {
            b.iter(|| {
                let mut c = VictimCache::new(geom(), MemoryModel::default(), 8);
                c.run_chunk(black_box(t.as_slice()));
                *c.metrics()
            })
        });
        group.bench_with_input(BenchmarkId::new("victim/noop", name), trace, |b, t| {
            b.iter(|| run_victim(sac_obs::NoopProbe, black_box(t)))
        });
        group.bench_with_input(BenchmarkId::new("victim/counting", name), trace, |b, t| {
            b.iter(|| run_victim(CountingProbe::default(), black_box(t)))
        });
        group.bench_with_input(BenchmarkId::new("victim/tracing", name), trace, |b, t| {
            b.iter(|| run_victim(tracing(), black_box(t)))
        });
        group.bench_with_input(BenchmarkId::new("soft/noop", name), trace, |b, t| {
            b.iter(|| run_soft(sac_obs::NoopProbe, black_box(t)))
        });
        group.bench_with_input(BenchmarkId::new("soft/tracing", name), trace, |b, t| {
            b.iter(|| run_soft(tracing(), black_box(t)))
        });
    }
    group.finish();
}

criterion_group!(benches, probe_overhead);
criterion_main!(benches);
