//! Simulator throughput: references per second for every engine on the
//! same trace. Useful for sizing sweeps, not a figure of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sac_bench::small_suite;
use sac_core::SoftCacheConfig;
use sac_experiments::Config;
use sac_simcache::{BypassMode, CacheGeometry, MemoryModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    let trace = suite.trace("MV").expect("MV in suite");
    let geom = CacheGeometry::standard();
    let mem = MemoryModel::default();

    let engines: Vec<(&str, Config)> = vec![
        ("standard", Config::standard()),
        ("victim", Config::standard_victim()),
        (
            "bypass",
            Config::Bypass {
                geom,
                mem,
                mode: BypassMode::Plain,
            },
        ),
        (
            "hw_prefetch",
            Config::HwPrefetch {
                geom,
                mem,
                lines: 8,
            },
        ),
        (
            "stream_buffers",
            Config::StreamBuffer {
                geom,
                mem,
                buffers: 4,
                depth: 4,
            },
        ),
        ("column_assoc", Config::ColumnAssoc { geom, mem }),
        (
            "assist",
            Config::Assist {
                geom,
                mem,
                lines: 16,
            },
        ),
        ("soft", Config::soft()),
        (
            "soft_prefetch",
            Config::Soft(SoftCacheConfig::soft().with_prefetch(true)),
        ),
    ];

    let mut group = c.benchmark_group("engine_throughput");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    for (name, cfg) in engines {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(cfg).run(black_box(trace)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
