//! Compiler-side throughput: the locality analysis, the tracer, the
//! static validator and the pretty-printer on the largest benchmark
//! programs.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_loopir::TraceOptions;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mv = sac_workloads::mv::program(256);
    let spmv = sac_workloads::spmv::program(sac_workloads::spmv::Params::small());
    let slalom = sac_workloads::slalom::program(sac_workloads::slalom::Params::small());

    c.bench_function("compiler/analyze_slalom", |b| {
        b.iter(|| black_box(&slalom).analyze())
    });
    c.bench_function("compiler/analyze_levels_mv", |b| {
        b.iter(|| sac_loopir::analysis::analyze(black_box(&mv)))
    });
    c.bench_function("compiler/validate_slalom", |b| {
        b.iter(|| black_box(&slalom).validate())
    });
    c.bench_function("compiler/pseudocode_spmv", |b| {
        b.iter(|| black_box(&spmv).to_pseudocode())
    });
    let opts = TraceOptions {
        seed: 1,
        gaps: true,
        levels: false,
    };
    c.bench_function("compiler/trace_mv_256", |b| {
        b.iter(|| black_box(&mv).trace(black_box(&opts)).expect("traces"))
    });
    let leveled = TraceOptions {
        seed: 1,
        gaps: true,
        levels: true,
    };
    c.bench_function("compiler/trace_mv_256_leveled", |b| {
        b.iter(|| black_box(&mv).trace(black_box(&leveled)).expect("traces"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
