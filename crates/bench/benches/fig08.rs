//! Figure 8a/8b — virtual vs physical line-size sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_core::SoftCacheConfig;
use sac_experiments::{figures, Config};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::fig08a(suite));
    print_figure(&figures::fig08b(suite));

    let trace = suite.trace("LIV").expect("LIV in suite");
    for vline in [32u64, 64, 128, 256] {
        let cfg = Config::Soft(SoftCacheConfig::soft().with_virtual_line(vline));
        c.bench_function(&format!("fig08/vline{vline}_liv"), |b| {
            b.iter(|| black_box(cfg).run(black_box(trace)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
