//! Figure 11a/11b — blocking and data copying under software control.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::print_figure;
use sac_experiments::{figures, Config};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    print_figure(&figures::fig11a(true));
    print_figure(&figures::fig11b(true));

    let blocked =
        sac_workloads::blocked::program(sac_workloads::blocked::Params { n: 240, block: 40 })
            .trace_default();
    c.bench_function("fig11a/soft_blocked_mv", |b| {
        b.iter(|| Config::soft().run(black_box(&blocked)))
    });

    let copied = sac_workloads::copying::program(sac_workloads::copying::Params {
        n: 32,
        ld: 120,
        block: 16,
        copying: true,
    })
    .trace_default();
    c.bench_function("fig11b/soft_copied_mm", |b| {
        b.iter(|| Config::soft().run(black_box(&copied)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
