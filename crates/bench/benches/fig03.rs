//! Figure 3a/3b — bypassing and victim-cache baselines vs the
//! software-assisted cache.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_experiments::{figures, Config};
use sac_simcache::{BypassMode, CacheGeometry, MemoryModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::fig03a(suite));
    print_figure(&figures::fig03b(suite));

    let trace = suite.trace("MV").expect("MV in suite");
    let geom = CacheGeometry::standard();
    let mem = MemoryModel::default();
    for (name, cfg) in [
        (
            "bypass_plain",
            Config::Bypass {
                geom,
                mem,
                mode: BypassMode::Plain,
            },
        ),
        (
            "bypass_buffered",
            Config::Bypass {
                geom,
                mem,
                mode: BypassMode::Buffered { lines: 2 },
            },
        ),
        ("victim", Config::standard_victim()),
    ] {
        c.bench_function(&format!("fig03/{name}_mv"), |b| {
            b.iter(|| black_box(cfg).run(black_box(trace)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
