//! Replay-engine throughput: the batched single-pass replay path that the
//! figure suite runs on. Three trace shapes stress the three code paths —
//! raw (a real suite trace), hit-heavy (footprint fits the cache, so the
//! inlined hit fast path dominates), miss-heavy (a cache-busting stride,
//! so the miss machinery dominates) — plus the streamed SACT decode and a
//! multi-config batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sac_bench::small_suite;
use sac_experiments::runner::ReplayBatch;
use sac_experiments::Config;
use sac_trace::io::ChunkedReader;
use sac_trace::{io, Access, Trace};
use std::hint::black_box;

/// Every reference lands in the standard 8 KB cache after the first pass.
fn hit_heavy(len: usize) -> Trace {
    let mut t = Trace::with_capacity("hit-heavy", len);
    for i in 0..len {
        t.push(Access::read((i as u64 % 512) * 8).with_temporal(true));
    }
    t
}

/// Alternating tags in every set of the standard 8 KB direct-mapped
/// geometry: each access evicts the line its revisit will need, so the
/// steady state is all misses (and the cycle is long enough to defeat
/// the 8-line bounce-back cache too).
fn miss_heavy(len: usize) -> Trace {
    let mut t = Trace::with_capacity("miss-heavy", len);
    for i in 0..len {
        let set = (i as u64 / 2) % 256;
        let tag = (i as u64) % 2;
        t.push(Access::read(tag * 8192 + set * 32));
    }
    t
}

fn replay_shapes(c: &mut Criterion) {
    let raw = small_suite().trace("MV").expect("MV in suite").clone();
    let shapes: Vec<(&str, Trace)> = vec![
        ("raw", raw),
        ("hit_heavy", hit_heavy(200_000)),
        ("miss_heavy", miss_heavy(200_000)),
    ];
    let mut group = c.benchmark_group("replay_shapes");
    group.sample_size(10);
    for (name, trace) in &shapes {
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::new("standard", name), trace, |b, t| {
            b.iter(|| black_box(Config::standard()).run(black_box(t)))
        });
        group.bench_with_input(BenchmarkId::new("soft", name), trace, |b, t| {
            b.iter(|| black_box(Config::soft()).run(black_box(t)))
        });
    }
    group.finish();
}

fn replay_batched(c: &mut Criterion) {
    let trace = small_suite().trace("MV").expect("MV in suite");
    let configs = [
        Config::standard(),
        Config::standard_victim(),
        Config::soft(),
    ];
    let mut group = c.benchmark_group("replay_batched");
    // Elements = references × engines: the batch replays each chunk once
    // per engine while it is hot.
    group.throughput(Throughput::Elements(
        trace.len() as u64 * configs.len() as u64,
    ));
    group.sample_size(10);
    group.bench_function("three_config_batch", |b| {
        b.iter(|| {
            let mut batch = ReplayBatch::new();
            for (i, cfg) in configs.iter().enumerate() {
                batch.push(format!("bench/batch/{i}"), cfg);
            }
            batch.replay(black_box(trace))
        })
    });
    group.finish();
}

fn streamed_decode(c: &mut Criterion) {
    let trace = small_suite().trace("MV").expect("MV in suite");
    let mut bytes = Vec::new();
    io::write_binary(trace, &mut bytes).expect("in-memory SACT write");
    let mut group = c.benchmark_group("streamed_decode");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    // Chunked decode + replay without ever materializing the trace.
    group.bench_function("decode_and_replay", |b| {
        b.iter(|| {
            let mut reader = ChunkedReader::new(black_box(&bytes[..])).expect("valid header");
            let mut batch = ReplayBatch::new();
            batch.push("bench/stream".into(), &Config::standard());
            batch.replay_reader(&mut reader).expect("valid stream")
        })
    });
    // Decode alone, for the decode/simulate split.
    group.bench_function("decode_only", |b| {
        b.iter(|| {
            let mut reader = ChunkedReader::new(black_box(&bytes[..])).expect("valid header");
            let mut n = 0usize;
            while let Some(chunk) = reader.next_chunk().expect("valid stream") {
                n += chunk.len();
            }
            n
        })
    });
    group.finish();
}

criterion_group!(benches, replay_shapes, replay_batched, streamed_decode);
criterion_main!(benches);
