//! Figure 1a/1b — reuse-distance and vector-length characterization.
//! Regenerates both tables, then times the two trace-analysis passes.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_experiments::figures;
use sac_trace::stats::{ReuseHistogram, VectorLengths};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::fig01a(suite));
    print_figure(&figures::fig01b(suite));

    let trace = suite.trace("MV").expect("MV in suite");
    c.bench_function("fig01a/reuse_histogram_mv", |b| {
        b.iter(|| ReuseHistogram::of(black_box(trace)))
    });
    c.bench_function("fig01b/vector_lengths_mv", |b| {
        b.iter(|| VectorLengths::of(black_box(trace)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
