//! Figure 9a/9b — cache-size and set-associativity sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_core::SoftCacheConfig;
use sac_experiments::{figures, Config};
use sac_simcache::CacheGeometry;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::fig09a(suite));
    print_figure(&figures::fig09b(suite));

    let trace = suite.trace("DYF").expect("DYF in suite");
    for (name, cfg) in [
        (
            "soft_64k",
            Config::Soft(
                SoftCacheConfig::soft()
                    .with_geometry(CacheGeometry::new(64 * 1024, 64, 1))
                    .with_virtual_line(128),
            ),
        ),
        (
            "soft_2way",
            Config::Soft(SoftCacheConfig::soft().with_geometry(CacheGeometry::new(8192, 32, 2))),
        ),
        (
            "simplified_2way",
            Config::Soft(SoftCacheConfig::simplified_assoc(2)),
        ),
    ] {
        c.bench_function(&format!("fig09/{name}_dyf"), |b| {
            b.iter(|| black_box(cfg).run(black_box(trace)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
