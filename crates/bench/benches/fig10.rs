//! Figure 10a/10b — the fully instrumented Perfect Club kernels and the
//! memory-latency sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use sac_bench::{print_figure, small_suite};
use sac_core::SoftCacheConfig;
use sac_experiments::{figures, Config, Suite};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let suite = small_suite();
    print_figure(&figures::fig10a());
    print_figure(&figures::fig10b(suite));

    let kernels = Suite::kernels();
    let trace = kernels.trace("ADM").expect("ADM kernel");
    c.bench_function("fig10a/soft_adm_kernel", |b| {
        b.iter(|| Config::soft().run(black_box(trace)))
    });
    let mv = suite.trace("MV").expect("MV in suite");
    for lat in [5u64, 30] {
        let cfg = Config::Soft(SoftCacheConfig::soft().with_latency(lat));
        c.bench_function(&format!("fig10b/soft_lat{lat}_mv"), |b| {
            b.iter(|| black_box(cfg).run(black_box(mv)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
