//! The benchmark programs of the software-assisted cache study.
//!
//! The paper evaluates nine numerical codes: four Perfect Club
//! applications (MDG, BDN, DYF, TRF), the NAS and Slalom benchmarks, the
//! Livermore Loops (LIV), and two numerical primitives — dense
//! matrix-vector multiply (MV) and sparse matrix-vector multiply (SpMV).
//! Figure 10a adds the most time-consuming subroutines of seven Perfect
//! Club codes (ADM, MDG, BDN, DYF, ARC, FLO, TRF) traced alone with full
//! instrumentation; §4.2/§4.3 add blocked MV and blocked+copied
//! matrix-matrix multiply.
//!
//! We do not have the Fortran sources or the Perfect Club inputs, so each
//! benchmark is a *structural stand-in*: a loop nest whose array sizes,
//! stride mix, CALL density and temporal/spatial signature match what the
//! paper reports for that code (Figures 1a, 1b and 4a). The cache
//! mechanisms only observe the reference stream and the tag bits, so this
//! preserves the behaviour the experiments measure; DESIGN.md documents
//! the substitution.
//!
//! Every builder returns a [`sac_loopir::Program`]; call
//! [`sac_loopir::Program::trace_default`] (or `.trace(&opts)`) to obtain
//! the tagged reference trace. Each workload takes a size parameter so
//! tests can run scaled-down instances; the `Default` parameters are the
//! paper-scale ones used by the figure harness.
//!
//! ```
//! use sac_workloads::mv;
//!
//! let program = mv::program(64);
//! let trace = program.trace_default();
//! assert!(trace.len() > 64 * 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocked;
pub mod copying;
pub mod livermore;
pub mod mv;
pub mod nas;
pub mod perfect;
pub mod sharing;
pub mod slalom;
pub mod spmv;

use sac_loopir::Program;

/// Catalog entry describing one benchmark stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadInfo {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// What the stand-in computes and why it has that shape.
    pub description: &'static str,
    /// What the original benchmark was.
    pub original: &'static str,
}

/// Descriptions of the nine benchmarks, in figure order.
pub fn catalog() -> [WorkloadInfo; 9] {
    [
        WorkloadInfo {
            name: "MDG",
            description: "pair-interaction loops whose bodies CALL a potential \
routine (tags killed), plus small tagged update sweeps: mostly untagged",
            original: "Perfect Club molecular dynamics (liquid water)",
        },
        WorkloadInfo {
            name: "BDN",
            description: "filter-bank convolution over long signals with a \
CALL-killed feature pass: ~40% untagged, the rest temporal+spatial",
            original: "Perfect Club signal processing",
        },
        WorkloadInfo {
            name: "DYF",
            description: "strided row accumulator (temporal, NOT spatial) \
against polluting coefficient/state streams: the bounce-back showcase",
            original: "Perfect Club structural dynamics (DYFESM)",
        },
        WorkloadInfo {
            name: "TRF",
            description: "transpose (one side non-stride-1) + stride-1 scaling \
+ strided butterflies + a CALL-killed driver pass",
            original: "Perfect Club transform code",
        },
        WorkloadInfo {
            name: "NAS",
            description: "5-point Jacobi smoothing sweeps with copy-back over \
a grid 40x the cache; sweeps are driver loops (per-call analysis scope)",
            original: "NAS multigrid-style kernel",
        },
        WorkloadInfo {
            name: "Slalom",
            description: "right-looking Gaussian elimination + back-solve on a \
matrix 14x the cache: pivot row/column reuse against the update stream",
            original: "Slalom radiosity system solve",
        },
        WorkloadInfo {
            name: "LIV",
            description: "Livermore kernels K1/K3/K5/K7/K12 over ~8 KB vectors, \
each repeated in-routine: cross-repetition reuse at the cache boundary",
            original: "Livermore Loops",
        },
        WorkloadInfo {
            name: "MV",
            description: "dense matrix-vector multiply: each 6 KB column sweep \
of A flushes the 6 KB X vector reused N references later (the paper's \
running example)",
            original: "dense matrix-vector multiply",
        },
        WorkloadInfo {
            name: "SpMV",
            description: "CSC sparse matrix-vector multiply with a banded 3-D \
pattern; X tagged temporal by user directive (the compiler cannot see \
through the indirection)",
            original: "sparse matrix-vector multiply",
        },
    ]
}

/// The nine benchmarks of the main evaluation, in the paper's figure
/// order: MDG, BDN, DYF, TRF, NAS, Slalom, LIV, MV, SpMV.
///
/// Paper-scale instances (hundreds of thousands to a few million
/// references each).
pub fn benchset() -> Vec<Program> {
    vec![
        perfect::mdg(perfect::PerfectScale::Full),
        perfect::bdn(perfect::PerfectScale::Full),
        perfect::dyf(perfect::PerfectScale::Full),
        perfect::trf(perfect::PerfectScale::Full),
        nas::program(nas::Params::default()),
        slalom::program(slalom::Params::default()),
        livermore::program(livermore::Params::default()),
        mv::program(mv::DEFAULT_N),
        spmv::program(spmv::Params::default()),
    ]
}

/// Scaled-down instances of the nine benchmarks for tests and examples
/// (tens of thousands of references each).
pub fn benchset_small() -> Vec<Program> {
    vec![
        perfect::mdg(perfect::PerfectScale::Small),
        perfect::bdn(perfect::PerfectScale::Small),
        perfect::dyf(perfect::PerfectScale::Small),
        perfect::trf(perfect::PerfectScale::Small),
        nas::program(nas::Params::small()),
        slalom::program(slalom::Params::small()),
        livermore::program(livermore::Params::small()),
        mv::program(128),
        spmv::program(spmv::Params::small()),
    ]
}

/// The Figure 10a set: the most time-consuming subroutines of seven
/// Perfect Club codes, manually instrumented and traced alone (no CALL
/// kills, loop references dominate).
pub fn perfect_kernels() -> Vec<Program> {
    perfect::kernels()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchset_has_nine_named_programs() {
        let set = benchset_small();
        let names: Vec<&str> = set.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["MDG", "BDN", "DYF", "TRF", "NAS", "Slalom", "LIV", "MV", "SpMV"]
        );
    }

    #[test]
    fn every_small_benchmark_traces_cleanly() {
        for p in benchset_small() {
            let trace = p
                .trace(&sac_loopir::TraceOptions {
                    seed: 1,
                    gaps: false,
                    levels: false,
                })
                .unwrap_or_else(|e| panic!("{} failed to trace: {e}", p.name()));
            assert!(
                trace.len() > 1_000,
                "{} too small: {}",
                p.name(),
                trace.len()
            );
        }
    }

    #[test]
    fn catalog_matches_benchset_order() {
        let names: Vec<&str> = benchset_small()
            .iter()
            .map(|p| p.name().to_string().leak() as &str)
            .collect();
        let cat: Vec<&str> = catalog().iter().map(|w| w.name).collect();
        assert_eq!(names, cat);
    }

    #[test]
    fn no_shipped_program_is_provably_out_of_bounds() {
        for p in benchset_small()
            .into_iter()
            .chain(perfect_kernels())
            .chain([crate::blocked::program(crate::blocked::Params {
                n: 60,
                block: 20,
            })])
            .chain([crate::copying::program(crate::copying::Params {
                n: 8,
                ld: 10,
                block: 4,
                copying: true,
            })])
        {
            let verdict = p.validate();
            assert!(
                !matches!(verdict, sac_loopir::Verdict::OutOfBounds(_)),
                "{}: {verdict:?}",
                p.name()
            );
        }
    }

    #[test]
    fn kernel_set_has_seven_programs() {
        let set = perfect_kernels();
        let names: Vec<&str> = set.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["ADM", "MDG", "BDN", "DYF", "ARC", "FLO", "TRF"]);
    }
}
