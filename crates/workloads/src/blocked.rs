//! Blocked matrix-vector multiply (§4.2, Figure 11a).
//!
//! ```fortran
//! DO jj = 0,N-1,B
//!   DO j1 = 0,N-1
//!     reg = Y(j1)
//!     DO j2 = jj, jj+B-1
//!       reg += A(j2,j1) * X(j2)
//!     ENDDO
//!     Y(j1) = reg
//!   ENDDO
//! ENDDO
//! ```
//!
//! Blocking the `j2` loop keeps a `B`-element slice of `X` resident
//! across the whole `j1` sweep. Data-locality algorithms pick `B` from
//! the cache size assuming the cache behaves as a local memory; in
//! reality interference and pollution force much smaller blocks (Lam,
//! Rothberg & Wolf). Software control reduces the pollution, so larger
//! blocks — closer to the theoretical optimum — keep paying off.

use sac_loopir::{aff, idx, Program};

/// Blocked-MV parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Problem size (must be a multiple of `block`).
    pub n: i64,
    /// Block size over the `j2` (X) dimension.
    pub block: i64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 1000,
            block: 100,
        }
    }
}

/// The block sizes swept in Figure 11a (all divide the default N=1000).
pub const FIG11A_BLOCKS: [i64; 10] = [10, 20, 25, 40, 50, 100, 200, 250, 500, 1000];

/// Builds the blocked MV nest.
///
/// # Panics
///
/// Panics unless `block` is a positive divisor of `n`.
pub fn program(params: Params) -> Program {
    assert!(
        params.block > 0 && params.n % params.block == 0,
        "block must divide the problem size"
    );
    let (n, bsz) = (params.n, params.block);
    let mut p = Program::new("BlockedMV");
    let jj = p.var("jj");
    let j1 = p.var("j1");
    let j2 = p.var("j2");
    let a = p.array("A", &[n, n]);
    let x = p.array("X", &[n]);
    let y = p.array("Y", &[n]);
    p.body(|s| {
        s.for_step(jj, 0, n, bsz, |s| {
            s.for_(j1, 0, n, |s| {
                s.read(y, &[idx(j1)]);
                s.for_(j2, idx(jj), aff(&[(jj, 1)], bsz), |s| {
                    s.read(a, &[idx(j2), idx(j1)]);
                    s.read(x, &[idx(j2)]);
                });
                s.write(y, &[idx(j1)]);
            });
        });
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_loopir::TraceOptions;

    #[test]
    fn reference_count_is_block_invariant() {
        let count = |b: i64| {
            program(Params { n: 60, block: b })
                .trace(&TraceOptions {
                    seed: 0,
                    gaps: false,
                    levels: false,
                })
                .unwrap()
                .len()
        };
        // A and X references are N² regardless of blocking; only the Y
        // re-reads scale with the number of block passes.
        let c10 = count(10);
        let c60 = count(60);
        assert_eq!(c60, 60 * (2 + 2 * 60));
        assert_eq!(c10, 6 * 60 * 2 + 2 * 60 * 60);
    }

    #[test]
    fn x_block_is_temporal() {
        let p = program(Params { n: 60, block: 10 });
        let tags = p.analyze();
        // Refs: Y read, A, X, Y write. X is invariant in j1; A is not.
        assert!(tags[2].temporal && tags[2].spatial);
        assert!(!tags[1].temporal && tags[1].spatial);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_divisor_block_rejected() {
        let _ = program(Params { n: 100, block: 7 });
    }

    #[test]
    fn paper_blocks_divide_default_n() {
        for b in FIG11A_BLOCKS {
            assert_eq!(Params::default().n % b, 0, "{b} must divide 1000");
        }
    }
}
