//! The NAS stand-in: a multigrid-style smoothing kernel.
//!
//! Jacobi sweeps of a 5-point stencil over a grid an order of magnitude
//! larger than the cache, followed by a copy-back pass — the structure of
//! the NAS MG smoother. The five stencil reads of `U` form one uniformly
//! generated group (their flattened subscripts differ by ±1 and ±ld), so
//! all are temporal and the leading one carries the spatial tag.

use sac_loopir::{aff, idx, Program};

/// NAS stand-in parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Grid extent (default 200 → 320 KB per grid).
    pub n: i64,
    /// Number of smoothing sweeps.
    pub sweeps: i64,
}

impl Params {
    /// Scaled-down instance for tests.
    pub fn small() -> Self {
        Params { n: 48, sweeps: 2 }
    }
}

impl Default for Params {
    fn default() -> Self {
        Params { n: 200, sweeps: 3 }
    }
}

/// Builds the smoothing kernel.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn program(params: Params) -> Program {
    assert!(params.n >= 4, "grid too small for a 5-point stencil");
    assert!(params.sweeps >= 1, "at least one sweep");
    let n = params.n;
    let mut p = Program::new("NAS");
    let t = p.var("t");
    let i = p.var("i");
    let j = p.var("j");
    let u = p.array("U", &[n, n]);
    let v = p.array("V", &[n, n]);

    p.body(|s| {
        s.for_driver(t, 0, params.sweeps, |s| {
            // Smooth: V = stencil(U).
            s.for_(j, 1, n - 1, |s| {
                s.for_(i, 1, n - 1, |s| {
                    s.read(u, &[aff(&[(i, 1)], -1), idx(j)]);
                    s.read(u, &[aff(&[(i, 1)], 1), idx(j)]);
                    s.read(u, &[idx(i), aff(&[(j, 1)], -1)]);
                    s.read(u, &[idx(i), aff(&[(j, 1)], 1)]);
                    s.read(u, &[idx(i), idx(j)]);
                    s.write(v, &[idx(i), idx(j)]);
                });
            });
            // Copy back: U = V.
            s.for_(j, 0, n, |s| {
                s.for_(i, 0, n, |s| {
                    s.read(v, &[idx(i), idx(j)]);
                    s.write(u, &[idx(i), idx(j)]);
                });
            });
        });
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_loopir::TraceOptions;
    use sac_trace::stats::TagFractions;

    #[test]
    fn reference_count() {
        let params = Params { n: 10, sweeps: 2 };
        let t = program(params)
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        assert_eq!(t.len(), 2 * (8 * 8 * 6 + 10 * 10 * 2));
    }

    #[test]
    fn stencil_reads_are_temporal() {
        // The smoother's five U reads form a uniformly generated group;
        // the copy pass and V write are spatial-only. The sweep loop is a
        // driver (each sweep is a subroutine invocation), so it creates
        // no temporal invariance.
        let t = program(Params::small())
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let f = TagFractions::of(&t);
        assert!(
            (0.4..0.8).contains(&f.temporal_fraction()),
            "{}",
            f.temporal_fraction()
        );
        assert!(f.spatial_fraction() > 0.3);
    }

    #[test]
    fn only_group_leaders_are_spatial_in_the_stencil() {
        let p = program(Params { n: 16, sweeps: 1 });
        let tags = p.analyze();
        // Refs 0..=4 are the U reads, ref 5 the V write; the leader among
        // the U group is U(i, j+1) — index 3.
        let spatial: Vec<bool> = tags.iter().take(6).map(|t| t.spatial).collect();
        assert_eq!(spatial, vec![false, false, false, true, false, true]);
        assert!(tags[..5].iter().all(|t| t.temporal));
    }
}
