//! The Livermore Loops stand-in (LIV).
//!
//! Five representative Livermore kernels over shared vectors, each
//! repeated a few times as in the real benchmark's timing harness. The
//! vectors exceed the 8 KB cache, so the cross-repetition temporal reuse
//! has distances in the 10³–10⁴ band of Figure 1a, and the stride-1
//! sweeps give LIV its strong spatial signature.
//!
//! Kernels: K1 (hydro fragment), K3 (inner product), K5 (tri-diagonal
//! elimination), K7 (equation of state), K12 (first difference).

use sac_loopir::{idx, shift, Program};

/// LIV problem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Vector length (default 1200 doubles = 9.6 KB per vector).
    pub n: i64,
    /// Repetitions of each kernel.
    pub reps: i64,
}

impl Params {
    /// Scaled-down instance for tests.
    pub fn small() -> Self {
        Params { n: 600, reps: 2 }
    }
}

impl Default for Params {
    fn default() -> Self {
        // The classic Livermore vector length is ~1000 doubles (8 KB —
        // one vector spans the whole 8 KB cache): cross-repetition reuse
        // is disrupted by pollution yet still within rescue range of the
        // bounce-back mechanism.
        Params { n: 1200, reps: 4 }
    }
}

/// Builds the LIV kernel suite.
///
/// # Panics
///
/// Panics if `n < 16` (the kernels read up to 11 elements ahead).
pub fn program(params: Params) -> Program {
    assert!(params.n >= 16, "vectors too short for the kernel offsets");
    assert!(params.reps >= 1, "at least one repetition");
    let n = params.n;
    let mut p = Program::new("LIV");
    let it = p.var("it");
    let k = p.var("k");
    let x = p.array("X", &[n + 16]);
    let y = p.array("Y", &[n + 16]);
    let z = p.array("Z", &[n + 16]);
    let u = p.array("U", &[n + 16]);

    p.body(|s| {
        // K1: hydro fragment — X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11)).
        s.for_(it, 0, params.reps, |s| {
            s.for_(k, 0, n, |s| {
                s.read(z, &[shift(k, 10)]);
                s.read(z, &[shift(k, 11)]);
                s.read(y, &[idx(k)]);
                s.write(x, &[idx(k)]);
            });
        });
        // K3: inner product — Q += Z(k)*X(k).
        s.for_(it, 0, params.reps, |s| {
            s.for_(k, 0, n, |s| {
                s.read(z, &[idx(k)]);
                s.read(x, &[idx(k)]);
            });
        });
        // K5: tri-diagonal elimination — X(i) = Z(i)*(Y(i) - X(i-1)).
        s.for_(it, 0, params.reps, |s| {
            s.for_(k, 1, n, |s| {
                s.read(x, &[shift(k, -1)]);
                s.read(y, &[idx(k)]);
                s.read(z, &[idx(k)]);
                s.write(x, &[idx(k)]);
            });
        });
        // K7: equation of state fragment — a 7-point group over U.
        s.for_(it, 0, params.reps, |s| {
            s.for_(k, 0, n, |s| {
                s.read(u, &[idx(k)]);
                s.read(u, &[shift(k, 1)]);
                s.read(u, &[shift(k, 2)]);
                s.read(u, &[shift(k, 3)]);
                s.read(u, &[shift(k, 4)]);
                s.read(u, &[shift(k, 5)]);
                s.read(u, &[shift(k, 6)]);
                s.read(z, &[idx(k)]);
                s.read(y, &[idx(k)]);
                s.write(x, &[idx(k)]);
            });
        });
        // K12: first difference — X(k) = Y(k+1) - Y(k).
        s.for_(it, 0, params.reps, |s| {
            s.for_(k, 0, n, |s| {
                s.read(y, &[shift(k, 1)]);
                s.read(y, &[idx(k)]);
                s.write(x, &[idx(k)]);
            });
        });
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_loopir::TraceOptions;
    use sac_trace::stats::TagFractions;

    #[test]
    fn reference_count_matches_formula() {
        let params = Params { n: 100, reps: 2 };
        let t = program(params)
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let per_rep = 4 * 100 + 2 * 100 + 4 * 99 + 10 * 100 + 3 * 100;
        assert_eq!(t.len(), 2 * per_rep);
    }

    #[test]
    fn kernels_are_mostly_tagged() {
        let t = program(Params::small())
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let f = TagFractions::of(&t);
        // Repetition loops make everything self-temporal; stride-1 sweeps
        // make the group leaders spatial.
        assert!(f.temporal_fraction() > 0.9);
        assert!(f.spatial_fraction() > 0.5);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn tiny_vectors_rejected() {
        let _ = program(Params { n: 8, reps: 1 });
    }
}
