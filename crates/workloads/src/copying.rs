//! Blocked matrix-matrix multiply with optional data copying (§4.3,
//! Figure 11b).
//!
//! Blocked `C += A·B` with the reused block of `B` optionally copied into
//! a contiguous local-memory array `TB` before the compute loops (Lam,
//! Rothberg & Wolf's copy optimization). The matrices carry an explicit
//! *leading dimension*, swept 116–126 in the paper: leading dimensions
//! near a power of two make the uncopied `B` block self-interfere
//! pathologically in a direct-mapped cache, which is exactly what copying
//! removes.
//!
//! Under software control the copy gets cheaper in two ways (§4.3): the
//! refill loop is stride-1 and spatial-tagged, so virtual lines load it
//! fast; and `TB` is tagged temporal (a user directive — the programmer
//! knows the local-memory array is reused), so the refill and the `A`
//! stream do not flush it.

use sac_loopir::{aff, idx, Program, Subscript};

/// Blocked-MM parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Matrix extent (N × N compute).
    pub n: i64,
    /// Declared leading dimension (≥ n); the Figure 11b sweep variable.
    pub ld: i64,
    /// Block size over the `k` and `j` dimensions (must divide `n`).
    pub block: i64,
    /// Whether the reused `B` block is copied to a contiguous buffer.
    pub copying: bool,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 64,
            ld: 120,
            block: 32,
            copying: false,
        }
    }
}

/// The leading dimensions swept in Figure 11b.
pub const FIG11B_LDS: [i64; 11] = [116, 117, 118, 119, 120, 121, 122, 123, 124, 125, 126];

/// Builds the blocked MM nest.
///
/// # Panics
///
/// Panics unless `ld ≥ n` and `block` divides `n`.
pub fn program(params: Params) -> Program {
    assert!(
        params.ld >= params.n,
        "leading dimension must cover the matrix"
    );
    assert!(
        params.block > 0 && params.n % params.block == 0,
        "block must divide n"
    );
    let (n, ld, bsz) = (params.n, params.ld, params.block);
    let mut p = Program::new(if params.copying { "MMcopy" } else { "MM" });
    let kk = p.var("kk");
    let jj = p.var("jj");
    let i = p.var("i");
    let j = p.var("j");
    let k = p.var("k");
    let a = p.array("A", &[ld, n]);
    let b = p.array("B", &[ld, n]);
    let c = p.array("C", &[ld, n]);
    let tb = p.array("TB", &[bsz, bsz]);

    p.body(|s| {
        s.for_step(kk, 0, n, bsz, |s| {
            s.for_step(jj, 0, n, bsz, |s| {
                if params.copying {
                    // Refill the local-memory array: TB(k-kk, j-jj) = B(k,j).
                    // TB is force-tagged temporal (user directive): it is
                    // about to be reused across the whole i loop.
                    s.for_(j, idx(jj), aff(&[(jj, 1)], bsz), |s| {
                        s.for_(k, idx(kk), aff(&[(kk, 1)], bsz), |s| {
                            s.read(b, &[idx(k), idx(j)]);
                            s.write_tagged(
                                tb,
                                vec![
                                    Subscript::Affine(aff(&[(k, 1), (kk, -1)], 0)),
                                    Subscript::Affine(aff(&[(j, 1), (jj, -1)], 0)),
                                ],
                                true,
                                true,
                            );
                        });
                    });
                }
                s.for_(i, 0, n, |s| {
                    s.for_(j, idx(jj), aff(&[(jj, 1)], bsz), |s| {
                        s.read(c, &[idx(i), idx(j)]);
                        s.for_(k, idx(kk), aff(&[(kk, 1)], bsz), |s| {
                            s.read(a, &[idx(i), idx(k)]);
                            if params.copying {
                                s.read_tagged(
                                    tb,
                                    vec![
                                        Subscript::Affine(aff(&[(k, 1), (kk, -1)], 0)),
                                        Subscript::Affine(aff(&[(j, 1), (jj, -1)], 0)),
                                    ],
                                    true,
                                    true,
                                );
                            } else {
                                s.read(b, &[idx(k), idx(j)]);
                            }
                        });
                        s.write(c, &[idx(i), idx(j)]);
                    });
                });
            });
        });
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_loopir::TraceOptions;

    fn len(params: Params) -> usize {
        program(params)
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap()
            .len()
    }

    #[test]
    fn compute_reference_count() {
        let p = Params {
            n: 8,
            ld: 10,
            block: 4,
            copying: false,
        };
        // Per (kk,jj) tile: n * bsz * (2 + 2*bsz).
        let tiles = (8 / 4) * (8 / 4);
        assert_eq!(len(p), tiles * 8 * 4 * (2 + 2 * 4));
    }

    #[test]
    fn copying_adds_refill_references() {
        let base = Params {
            n: 8,
            ld: 10,
            block: 4,
            copying: false,
        };
        let with_copy = Params {
            copying: true,
            ..base
        };
        let tiles = (8 / 4) * (8 / 4);
        assert_eq!(len(with_copy) - len(base), tiles * 4 * 4 * 2);
    }

    #[test]
    fn tb_is_temporal_by_directive() {
        let p = program(Params {
            n: 8,
            ld: 10,
            block: 4,
            copying: true,
        });
        let tags = p.analyze();
        // Ref 1 is the TB write in the refill loop.
        assert!(tags[1].temporal && tags[1].spatial);
    }

    #[test]
    fn uncopied_b_is_temporal_but_strided_by_ld() {
        let p = program(Params {
            n: 8,
            ld: 10,
            block: 4,
            copying: false,
        });
        let tags = p.analyze();
        // Refs: C read(0), A(1), B(2), C write(3).
        assert!(tags[2].temporal, "B block reused across i");
        assert!(tags[2].spatial, "stride-1 in k");
        assert!(tags[1].temporal, "A row reused across j");
        assert!(!tags[1].spatial, "A is strided by ld in k");
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn short_ld_rejected() {
        let _ = program(Params {
            n: 64,
            ld: 32,
            block: 32,
            copying: false,
        });
    }
}
