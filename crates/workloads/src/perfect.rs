//! Perfect Club stand-ins: MDG, BDN, DYF, TRF (full benchmarks) and the
//! Figure 10a kernel set ADM, MDG, BDN, DYF, ARC, FLO, TRF.
//!
//! The paper notes that the Perfect Club codes gain less from software
//! assistance because (1) their test inputs have small working sets,
//! (2) many loop bodies contain subroutine CALLs that kill the tags,
//! (3) references outside loops are a large share of the total, and
//! (4) some loops are badly ordered (non-stride-1). The *full* variants
//! below reproduce those handicaps; the *kernel* variants model the
//! manually instrumented, most time-consuming subroutines of Figure 10a
//! (no CALLs, loop references dominate), where software assistance
//! recovers its headroom.

use sac_loopir::{aff, idx, lit, shift, Program};

/// Whether to build the paper-scale or a scaled-down instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfectScale {
    /// Paper-scale (hundreds of thousands of references).
    Full,
    /// Test-scale (tens of thousands of references).
    Small,
}

impl PerfectScale {
    fn pick(self, full: i64, small: i64) -> i64 {
        match self {
            PerfectScale::Full => full,
            PerfectScale::Small => small,
        }
    }
}

/// MDG: molecular-dynamics-like. Pair-interaction loops whose bodies
/// contain a CALL (killing every tag, as the paper's analysis does), plus
/// small tagged position-update sweeps. Small working set, mostly
/// untagged references — the Figure 4a signature of MDG.
pub fn mdg(scale: PerfectScale) -> Program {
    build_mdg(scale, false)
}

fn build_mdg(scale: PerfectScale, kernel: bool) -> Program {
    let nmol = scale.pick(400, 120);
    let neigh = scale.pick(50, 16);
    let steps = scale.pick(3, 2);
    let mut p = Program::new("MDG");
    let s_ = p.var("step");
    let i = p.var("i");
    let j = p.var("j");
    let x = p.array("X", &[nmol]);
    let y = p.array("Y", &[nmol]);
    let z = p.array("Z", &[nmol]);
    let f = p.array("F", &[nmol]);
    let v = p.array("V", &[nmol]);

    p.body(|b| {
        b.for_driver(s_, 0, steps, |b| {
            // Pair interactions; the CALL models the per-pair potential
            // subroutine and clears the tags of the whole nest.
            b.for_(i, 0, nmol, |b| {
                b.for_(j, 0, neigh, |b| {
                    b.read(x, &[idx(i)]);
                    b.read(y, &[idx(i)]);
                    b.read(z, &[idx(i)]);
                    b.read(x, &[idx(j)]);
                    b.read(y, &[idx(j)]);
                    b.read(z, &[idx(j)]);
                    b.read(f, &[idx(i)]);
                    b.write(f, &[idx(i)]);
                    if !kernel {
                        b.call();
                    }
                });
            });
            // Position update: clean, taggable sweep.
            b.for_(i, 0, nmol, |b| {
                b.read(v, &[idx(i)]);
                b.read(f, &[idx(i)]);
                b.read(x, &[idx(i)]);
                b.write(x, &[idx(i)]);
            });
        });
    });
    p
}

/// BDN: a filter-bank convolution over long signals, with an untagged
/// (CALL-containing) setup pass in the full variant.
pub fn bdn(scale: PerfectScale) -> Program {
    build_bdn(scale, false)
}

fn build_bdn(scale: PerfectScale, kernel: bool) -> Program {
    let n = scale.pick(6000, 1200);
    let taps = 16;
    let nfilters = 2;
    let feats = 16;
    let mut p = Program::new("BDN");
    let f_ = p.var("f");
    let i = p.var("i");
    let k = p.var("k");
    let input = p.array("IN", &[n + taps]);
    let w = p.array("W", &[taps, nfilters]);
    let out = p.array("OUT", &[n, nfilters]);
    let feat = p.array("FEAT", &[n, 2]);

    p.body(|b| {
        if !kernel {
            // Feature-extraction pass whose body CALLs a library routine:
            // all of its references stay untagged, giving BDN the high
            // no-tag fraction the paper reports (Figure 4a: MDG, BDN).
            b.for_(i, 0, n, |b| {
                b.for_(k, 0, feats, |b| {
                    b.read(input, &[aff(&[(i, 1)], 0)]);
                    b.read(feat, &[idx(i), lit(0)]);
                    b.write(feat, &[idx(i), lit(1)]);
                    b.call();
                });
            });
        }
        b.for_(f_, 0, nfilters, |b| {
            b.for_(i, 0, n, |b| {
                b.read(out, &[idx(i), idx(f_)]);
                b.for_(k, 0, taps, |b| {
                    b.read(input, &[aff(&[(i, 1), (k, 1)], 0)]);
                    b.read(w, &[idx(k), idx(f_)]);
                });
                b.write(out, &[idx(i), idx(f_)]);
            });
        });
    });
    p
}

/// DYF: a structural-dynamics-like update — a strided row accumulator
/// `R` reused across every column (temporal, but *not* spatial: its
/// stride defeats the spatial rule), against coefficient/state streams
/// that pollute the cache between reuses. This is the Figure 4a
/// signature of DYF (temporal-no-spatial dominant) and the code where
/// the bounce-back mechanism buys the most: `R` keeps getting flushed by
/// the streams and bounced back.
pub fn dyf(scale: PerfectScale) -> Program {
    build_dyf(scale)
}

fn build_dyf(scale: PerfectScale) -> Program {
    let nrows = scale.pick(200, 100);
    let ncols = scale.pick(300, 100);
    let sweeps = scale.pick(3, 2);
    let mut p = Program::new("DYF");
    let t = p.var("t");
    let i = p.var("i");
    let j = p.var("j");
    // R is accessed with stride 4 (an interleaved record layout): the
    // spatial rule (coefficient < 4) does not fire.
    let r = p.array("R", &[4 * nrows]);
    let c = p.array("C", &[nrows, ncols]);
    let u = p.array("U", &[nrows, ncols]);
    let w = p.array("W", &[nrows, ncols]);

    p.body(|b| {
        // The time-step loop calls the update routine: a driver loop.
        b.for_driver(t, 0, sweeps, |b| {
            b.for_(j, 0, ncols, |b| {
                b.for_(i, 0, nrows, |b| {
                    b.read(r, &[aff(&[(i, 4)], 0)]);
                    b.read(c, &[idx(i), idx(j)]);
                    b.read(u, &[idx(i), idx(j)]);
                    b.write(w, &[idx(i), idx(j)]);
                    b.write(r, &[aff(&[(i, 4)], 0)]);
                });
            });
        });
    });
    p
}

/// TRF: transform-like phases — a transpose (one side non-stride-1, the
/// paper's "badly ordered loops"), stride-1 scaling passes, and a
/// strided butterfly that defeats the spatial tag. The full variant adds
/// a CALL-killed pass.
pub fn trf(scale: PerfectScale) -> Program {
    build_trf(scale, false)
}

fn build_trf(scale: PerfectScale, kernel: bool) -> Program {
    let n = scale.pick(100, 40);
    let reps = scale.pick(4, 2);
    let mut p = Program::new("TRF");
    let r = p.var("r");
    let i = p.var("i");
    let j = p.var("j");
    let a = p.array("A", &[n, n]);
    let bmat = p.array("B", &[n, n]);
    let work = p.array("WK", &[n * n]);

    p.body(|b| {
        b.for_driver(r, 0, reps, |b| {
            // Transpose: B(j,i) = A(i,j); A is stride-1 in i, B is not.
            b.for_(j, 0, n, |b| {
                b.for_(i, 0, n, |b| {
                    b.read(a, &[idx(i), idx(j)]);
                    b.write(bmat, &[idx(j), idx(i)]);
                });
            });
            // Stride-1 scaling pass over the flattened work array.
            b.for_(i, 0, n * n, |b| {
                b.read(work, &[idx(i)]);
                b.write(work, &[idx(i)]);
            });
            // Strided butterfly-like pass: stride 8 defeats spatial tags.
            b.for_step(i, 0, n * n - 8, 8, |b| {
                b.read(work, &[idx(i)]);
                b.read(work, &[shift(i, 8)]);
                b.write(work, &[idx(i)]);
            });
            if !kernel {
                // Driver loop with a CALL: untagged references.
                b.for_(i, 0, n, |b| {
                    b.read(a, &[lit(0), idx(i)]);
                    b.call();
                });
            }
        });
    });
    p
}

/// ADM (kernel only): a 2-D advection stencil, sweep-repeated.
fn adm() -> Program {
    let g = 128;
    let sweeps = 3;
    let mut p = Program::new("ADM");
    let t = p.var("t");
    let i = p.var("i");
    let j = p.var("j");
    let u = p.array("U", &[g, g]);
    let v = p.array("V", &[g, g]);
    p.body(|b| {
        b.for_driver(t, 0, sweeps, |b| {
            b.for_(j, 1, g - 1, |b| {
                b.for_(i, 1, g - 1, |b| {
                    b.read(u, &[aff(&[(i, 1)], 1), idx(j)]);
                    b.read(u, &[aff(&[(i, 1)], -1), idx(j)]);
                    b.read(u, &[idx(i), idx(j)]);
                    b.write(v, &[idx(i), idx(j)]);
                });
            });
        });
    });
    p
}

/// ARC (kernel only): multi-array 2-D sweeps (body-fitted grid update).
fn arc() -> Program {
    let g = 96;
    let sweeps = 3;
    let mut p = Program::new("ARC");
    let t = p.var("t");
    let i = p.var("i");
    let j = p.var("j");
    let u = p.array("U", &[g, g]);
    let met1 = p.array("XI", &[g, g]);
    let met2 = p.array("ETA", &[g, g]);
    let w = p.array("W", &[g, g]);
    p.body(|b| {
        b.for_driver(t, 0, sweeps, |b| {
            b.for_(j, 0, g, |b| {
                b.for_(i, 0, g, |b| {
                    b.read(u, &[idx(i), idx(j)]);
                    b.read(met1, &[idx(i), idx(j)]);
                    b.read(met2, &[idx(i), idx(j)]);
                    b.write(w, &[idx(i), idx(j)]);
                });
            });
        });
    });
    p
}

/// FLO (kernel only): 1-D flux computation and update with group
/// dependences.
fn flo() -> Program {
    let n = 3000;
    let reps = 4;
    let mut p = Program::new("FLO");
    let t = p.var("t");
    let i = p.var("i");
    let q = p.array("Q", &[n + 2]);
    let f = p.array("FL", &[n + 2]);
    p.body(|b| {
        b.for_driver(t, 0, reps, |b| {
            // Flux: FL(i) = Q(i+1) - Q(i).
            b.for_(i, 0, n, |b| {
                b.read(q, &[shift(i, 1)]);
                b.read(q, &[idx(i)]);
                b.write(f, &[idx(i)]);
            });
            // Update: Q(i) -= dt * (FL(i) - FL(i-1)).
            b.for_(i, 1, n, |b| {
                b.read(f, &[idx(i)]);
                b.read(f, &[shift(i, -1)]);
                b.read(q, &[idx(i)]);
                b.write(q, &[idx(i)]);
            });
        });
    });
    p
}

/// The Figure 10a kernel set, in the paper's order: ADM, MDG, BDN, DYF,
/// ARC, FLO, TRF — each the fully instrumented, most time-consuming
/// subroutine of its code, traced alone.
pub fn kernels() -> Vec<Program> {
    vec![
        adm(),
        build_mdg(PerfectScale::Full, true),
        build_bdn(PerfectScale::Full, true),
        build_dyf(PerfectScale::Full),
        arc(),
        flo(),
        build_trf(PerfectScale::Full, true),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_loopir::TraceOptions;
    use sac_trace::stats::TagFractions;

    fn tag_fractions(p: &Program) -> TagFractions {
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        TagFractions::of(&t)
    }

    #[test]
    fn mdg_is_mostly_untagged() {
        let f = tag_fractions(&mdg(PerfectScale::Small));
        assert!(
            f.fraction(sac_trace::stats::TagClass::None) > 0.7,
            "CALL kills should dominate: {:?}",
            f.fractions()
        );
    }

    #[test]
    fn mdg_kernel_variant_is_tagged() {
        let f = tag_fractions(&build_mdg(PerfectScale::Small, true));
        assert!(f.temporal_fraction() > 0.5, "{:?}", f.fractions());
    }

    #[test]
    fn dyf_matches_its_figure_4a_signature() {
        let f = tag_fractions(&dyf(PerfectScale::Small));
        // Temporal-no-spatial dominates the tagged references (the R
        // accumulator), as in the paper's Figure 4a for DYF.
        let t_only = f.fraction(sac_trace::stats::TagClass::TemporalOnly);
        assert!((0.3..0.5).contains(&t_only), "{:?}", f.fractions());
        assert!(f.fraction(sac_trace::stats::TagClass::Both) < 0.05);
    }

    #[test]
    fn trf_mixes_strides() {
        let p = trf(PerfectScale::Small);
        let tags = p.analyze();
        // Transpose: A(i,j) spatial (stride-1 in i), B(j,i) not.
        assert!(tags[0].spatial);
        assert!(!tags[1].spatial);
    }

    #[test]
    fn bdn_weights_are_temporal() {
        let p = bdn(PerfectScale::Small);
        let tags = p.analyze();
        // Refs 0..=2: feature pass (killed); 3: OUT read; 4: IN(i+k);
        // 5: W(k,f); 6: OUT write. The weight table is invariant in i.
        for killed in &tags[0..3] {
            assert_eq!(*killed, sac_loopir::Tags::NONE, "CALL-killed");
        }
        assert!(tags[5].temporal, "weights reused across i");
    }

    #[test]
    fn bdn_is_heavily_untagged() {
        let f = tag_fractions(&bdn(PerfectScale::Small));
        assert!(
            f.fraction(sac_trace::stats::TagClass::None) > 0.35,
            "{:?}",
            f.fractions()
        );
    }

    #[test]
    fn adm_stencil_group_is_temporal() {
        let p = kernels().remove(0);
        assert_eq!(p.name(), "ADM");
        let tags = p.analyze();
        // U(i+1,j), U(i-1,j), U(i,j) form a group; the +1 leader is the
        // only spatial one of the three.
        assert!(tags[0].temporal && tags[0].spatial);
        assert!(tags[1].temporal && !tags[1].spatial);
        assert!(tags[2].temporal && !tags[2].spatial);
    }

    #[test]
    fn arc_sweeps_are_spatial_only() {
        let p = kernels().remove(4);
        assert_eq!(p.name(), "ARC");
        let tags = p.analyze();
        // Four independent stride-1 sweeps: spatial, no reuse in a single
        // pass (the driver loop is invisible to the analysis).
        for t in &tags {
            assert!(t.spatial && !t.temporal, "{tags:?}");
        }
    }

    #[test]
    fn flo_flux_groups_are_temporal() {
        let p = kernels().remove(5);
        assert_eq!(p.name(), "FLO");
        let tags = p.analyze();
        // Q(i+1)/Q(i) and FL(i)/FL(i-1) pairs: group-temporal with the
        // leading member spatial.
        assert!(tags[0].temporal && tags[0].spatial, "Q(i+1) leads");
        assert!(tags[1].temporal && !tags[1].spatial, "Q(i) follows");
        assert!(tags[3].temporal && tags[3].spatial, "FL(i) leads");
        assert!(tags[4].temporal && !tags[4].spatial, "FL(i-1) follows");
    }

    #[test]
    fn all_kernels_trace() {
        for p in kernels() {
            let t = p
                .trace(&TraceOptions {
                    seed: 0,
                    gaps: false,
                    levels: false,
                })
                .unwrap();
            assert!(t.len() > 50_000, "{}: {}", p.name(), t.len());
        }
    }

    #[test]
    fn kernel_variants_have_fewer_untagged_refs_than_full() {
        let full = tag_fractions(&mdg(PerfectScale::Full));
        let kern = tag_fractions(&build_mdg(PerfectScale::Full, true));
        assert!(
            kern.fraction(sac_trace::stats::TagClass::None)
                < full.fraction(sac_trace::stats::TagClass::None)
        );
    }
}
