//! Sparse matrix-vector multiply in compressed-column form (§4.1).
//!
//! ```fortran
//! DO j1 = 0,N-1
//!   reg = Y(j1)
//!   DO j2 = D(j1), D(j1+1)-1
//!     reg += A(j2) * X(Index(j2))
//!   ENDDO
//!   Y(j1) = reg
//! ENDDO
//! ```
//!
//! The locality here is *scarce*: each element of `X` is reused only as
//! often as its row has non-zeros (10–80 in typical 3-D problems), and
//! the indirect addressing randomizes accesses and stretches reuse
//! distances. The compiler cannot tag the indirect `X` reference, so the
//! paper applies user directives: `A` and `Index` are streaming
//! (spatial-only — which the analysis finds on its own) while
//! `X(Index(j2))` is forced temporal by directive.

use sac_loopir::{idx, indirect, shift, Bound, Program};
use sac_trace::rng::SplitMix64;

/// Sparse-problem shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of matrix columns (outer loop trips).
    pub cols: i64,
    /// Length of the `X` vector (number of rows).
    pub rows: i64,
    /// Minimum non-zeros per column.
    pub nnz_min: i64,
    /// Maximum non-zeros per column (inclusive).
    pub nnz_max: i64,
    /// Half-bandwidth of the sparsity pattern: non-zeros of column `j`
    /// cluster within `±band` of the diagonal, as in matrices assembled
    /// from 3-D meshes (the paper's "3-D problems"). The active window of
    /// `X` therefore slides slowly, giving the scarce-but-real temporal
    /// locality §4.1 describes.
    pub band: i64,
    /// Seed for the sparsity pattern.
    pub seed: u64,
}

impl Params {
    /// A scaled-down instance for tests.
    pub fn small() -> Self {
        Params {
            cols: 400,
            rows: 1024,
            nnz_min: 10,
            nnz_max: 40,
            band: 128,
            seed: 7,
        }
    }
}

impl Default for Params {
    fn default() -> Self {
        // X is 64 KB (8× the cache); ~45 nnz per column on average; the
        // ±300-row band keeps the active X window under 5 KB.
        Params {
            cols: 12_000,
            rows: 8_192,
            nnz_min: 10,
            nnz_max: 80,
            band: 300,
            seed: 7,
        }
    }
}

/// Builds the SpMV loop nest with a synthetic random sparsity pattern.
///
/// # Panics
///
/// Panics if the parameters are degenerate (no rows/columns, or an empty
/// nnz range).
pub fn program(params: Params) -> Program {
    assert!(params.cols >= 1 && params.rows >= 1, "empty problem");
    assert!(
        0 < params.nnz_min && params.nnz_min <= params.nnz_max,
        "bad nnz range"
    );
    assert!(params.band >= 1, "band must be positive");
    let mut rng = SplitMix64::seed_from_u64(params.seed);

    // Column pointers and row indices (CSC). Row indices are sorted per
    // column, as a real assembly would produce.
    let mut colptr: Vec<i64> = Vec::with_capacity(params.cols as usize + 1);
    let mut rowidx: Vec<i64> = Vec::new();
    colptr.push(0);
    for j in 0..params.cols {
        let nnz = rng.range_i64(params.nnz_min, params.nnz_max);
        // Centre of column j's band on a diagonal-like profile.
        let centre = j * params.rows / params.cols.max(1);
        let lo = (centre - params.band).max(0);
        let hi = (centre + params.band).min(params.rows - 1);
        let mut rows: Vec<i64> = (0..nnz).map(|_| rng.range_i64(lo, hi)).collect();
        rows.sort_unstable();
        rows.dedup();
        rowidx.extend_from_slice(&rows);
        colptr.push(rowidx.len() as i64);
    }
    let total_nnz = rowidx.len() as i64;

    let mut p = Program::new("SpMV");
    let j1 = p.var("j1");
    let j2 = p.var("j2");
    let a = p.array("A", &[total_nnz]);
    let index = p.array("Index", &[total_nnz]);
    let x = p.array("X", &[params.rows]);
    let y = p.array("Y", &[params.cols]);
    let d = p.table(colptr);
    let row_table = p.table(rowidx);

    p.body(|s| {
        s.for_(j1, 0, params.cols, |s| {
            s.read(y, &[idx(j1)]);
            s.for_(
                j2,
                Bound::Table {
                    table: d,
                    index: idx(j1),
                },
                Bound::Table {
                    table: d,
                    index: shift(j1, 1),
                },
                |s| {
                    s.read(a, &[idx(j2)]);
                    s.read(index, &[idx(j2)]);
                    // User directive (§4.1): X is reusable but the
                    // compiler cannot see it through the indirection.
                    s.read_tagged(x, vec![indirect(row_table, idx(j2))], true, false);
                },
            );
            s.write(y, &[idx(j1)]);
        });
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_loopir::TraceOptions;
    use sac_trace::stats::{TagClass, TagFractions};

    fn small_trace() -> sac_trace::Trace {
        program(Params::small())
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap()
    }

    #[test]
    fn traces_and_is_sized_right() {
        let t = small_trace();
        let p = Params::small();
        let min = p.cols * 5; // 2 Y refs + at least 1 nnz (3 refs) per column
        assert!(t.len() as i64 > min, "trace too small: {}", t.len());
    }

    #[test]
    fn x_is_temporal_by_directive_and_streams_are_spatial() {
        let t = small_trace();
        let f = TagFractions::of(&t);
        // A and Index: spatial-only; X: temporal-only; Y: both.
        assert!(f.fraction(TagClass::SpatialOnly) > 0.4);
        assert!(f.fraction(TagClass::TemporalOnly) > 0.2);
    }

    #[test]
    fn same_seed_same_pattern() {
        let a = program(Params::small())
            .trace(&TraceOptions {
                seed: 3,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let b = program(Params::small())
            .trace(&TraceOptions {
                seed: 3,
                gaps: false,
                levels: false,
            })
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bad nnz range")]
    fn degenerate_nnz_rejected() {
        let _ = program(Params {
            nnz_min: 5,
            nnz_max: 4,
            ..Params::small()
        });
    }

    #[test]
    fn pattern_is_banded() {
        let params = Params::small();
        let p = program(params);
        let x_decl = &p.arrays()[2];
        assert_eq!(x_decl.name(), "X");
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        // Track X accesses; consecutive ones must stay within ~2 bands.
        let lo = x_decl.base();
        let hi = lo + x_decl.size_bytes();
        let xs: Vec<i64> = t
            .iter()
            .filter(|a| a.addr() >= lo && a.addr() < hi && a.temporal())
            .map(|a| ((a.addr() - lo) / 8) as i64)
            .collect();
        for w in xs.windows(2) {
            assert!(
                (w[0] - w[1]).abs() <= 4 * params.band,
                "jump {} exceeds the band",
                (w[0] - w[1]).abs()
            );
        }
    }
}
