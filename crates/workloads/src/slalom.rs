//! The Slalom stand-in: dense Gaussian elimination.
//!
//! Slalom's dominant cost is the solution of a dense radiosity system;
//! the stand-in performs right-looking Gaussian elimination followed by
//! back-substitution on a matrix an order of magnitude larger than the
//! cache. The pivot column `A(i,k)` and pivot row `A(k,j)` are reused
//! across the trailing submatrix update — textbook temporal locality —
//! while the `A(i,j)` update streams.

use sac_loopir::{idx, shift, Program};

/// Slalom stand-in parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Matrix extent (default 120 → 115 KB).
    pub n: i64,
}

impl Params {
    /// Scaled-down instance for tests.
    pub fn small() -> Self {
        Params { n: 48 }
    }
}

impl Default for Params {
    fn default() -> Self {
        Params { n: 120 }
    }
}

/// Builds the elimination + back-substitution nest.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn program(params: Params) -> Program {
    assert!(params.n >= 3, "matrix too small to eliminate");
    let n = params.n;
    let mut p = Program::new("Slalom");
    let k = p.var("k");
    let j = p.var("j");
    let i = p.var("i");
    let a = p.array("A", &[n, n]);
    let b = p.array("B", &[n]);

    p.body(|s| {
        // Right-looking elimination: for each pivot k, update the
        // trailing submatrix A(i,j) -= A(i,k) * A(k,j).
        s.for_(k, 0, n - 1, |s| {
            s.for_(j, shift(k, 1), n, |s| {
                s.for_(i, shift(k, 1), n, |s| {
                    s.read(a, &[idx(i), idx(j)]);
                    s.read(a, &[idx(i), idx(k)]);
                    s.read(a, &[idx(k), idx(j)]);
                    s.write(a, &[idx(i), idx(j)]);
                });
            });
            // Update the right-hand side: B(i) -= A(i,k) * B(k).
            s.for_(i, shift(k, 1), n, |s| {
                s.read(b, &[idx(i)]);
                s.read(a, &[idx(i), idx(k)]);
                s.read(b, &[idx(k)]);
                s.write(b, &[idx(i)]);
            });
        });
        // Back-substitution (descending): B(k) -= A(k,j) * B(j), j > k.
        s.for_step(k, n - 2, -1, -1, |s| {
            s.for_(j, shift(k, 1), n, |s| {
                s.read(a, &[idx(k), idx(j)]);
                s.read(b, &[idx(j)]);
            });
            s.read(b, &[idx(k)]);
            s.write(b, &[idx(k)]);
        });
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_loopir::TraceOptions;
    use sac_trace::stats::TagFractions;

    #[test]
    fn traces_with_expected_magnitude() {
        let n = 20i64;
        let t = program(Params { n })
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        // Elimination dominates: ~4/3 n³ references.
        let update: i64 = (0..n - 1).map(|k| 4 * (n - 1 - k) * (n - 1 - k)).sum();
        assert!(t.len() as i64 > update);
        assert!((t.len() as i64) < update + 6 * n * n);
    }

    #[test]
    fn pivot_row_and_column_are_temporal() {
        let p = program(Params::small());
        let tags = p.analyze();
        // Refs 0..=3: A(i,j) read, A(i,k), A(k,j), A(i,j) write.
        assert!(tags[1].temporal, "pivot column reused across j");
        assert!(tags[1].spatial, "pivot column is stride-1 in i");
        assert!(tags[2].temporal, "pivot row reused across i");
        assert!(tags[2].spatial, "invariant in the innermost loop");
        assert!(tags[0].temporal && tags[3].temporal, "read-write group");
    }

    #[test]
    fn overall_tag_mix_is_temporal_heavy() {
        let t = program(Params::small())
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let f = TagFractions::of(&t);
        assert!(f.temporal_fraction() > 0.8);
    }
}
