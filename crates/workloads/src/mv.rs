//! Dense matrix-vector multiply (the paper's running example, §2.2).
//!
//! ```fortran
//! DO j1 = 0,N-1
//!   reg = Y(j1)
//!   DO j2 = 0,N-1
//!     reg += A(j2,j1) * X(j2)
//!   ENDDO
//!   Y(j1) = reg
//! ENDDO
//! ```
//!
//! With `N` large relative to the cache but `X` still fitting (no
//! capacity miss for `X` alone), each column sweep of `A` flushes most of
//! `X`, which is reused `N` iterations later: the pathological pollution
//! pattern the bounce-back cache targets. `X` is tagged temporal+spatial,
//! `A` spatial-only, `Y` temporal+spatial — the analysis derives all of
//! this from the subscripts.

use sac_loopir::{idx, Program};

/// Paper-scale problem size: `X` occupies 6 KB of the 8 KB cache and each
/// 6 KB column sweep of `A` flushes it.
pub const DEFAULT_N: i64 = 768;

/// Builds the MV loop nest for an `N × N` matrix.
///
/// # Panics
///
/// Panics if `n < 1`.
pub fn program(n: i64) -> Program {
    assert!(n >= 1, "matrix extent must be positive");
    let mut p = Program::new("MV");
    let j1 = p.var("j1");
    let j2 = p.var("j2");
    let a = p.array("A", &[n, n]);
    let x = p.array("X", &[n]);
    let y = p.array("Y", &[n]);
    p.body(|s| {
        s.for_(j1, 0, n, |s| {
            s.read(y, &[idx(j1)]);
            s.for_(j2, 0, n, |s| {
                s.read(a, &[idx(j2), idx(j1)]);
                s.read(x, &[idx(j2)]);
            });
            s.write(y, &[idx(j1)]);
        });
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use sac_loopir::TraceOptions;
    use sac_trace::stats::TagFractions;

    #[test]
    fn reference_count() {
        let t = program(16)
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        // Per j1: Y read + N*(A,X) + Y write.
        assert_eq!(t.len(), 16 * (2 + 2 * 16));
    }

    #[test]
    fn tags_split_as_expected() {
        let t = program(32)
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let f = TagFractions::of(&t);
        // A is half the references: spatial-only ≈ 0.5.
        assert!((f.fraction(sac_trace::stats::TagClass::SpatialOnly) - 0.5).abs() < 0.05);
        // X and Y: temporal+spatial.
        assert!(f.fraction(sac_trace::stats::TagClass::Both) > 0.45);
    }

    #[test]
    fn x_addresses_repeat_across_outer_iterations() {
        let p = program(8);
        let t = p
            .trace(&TraceOptions {
                seed: 0,
                gaps: false,
                levels: false,
            })
            .unwrap();
        let x_base = p.arrays()[1].base();
        let xs: Vec<u64> = t
            .iter()
            .filter(|a| a.addr() >= x_base && a.addr() < x_base + 64)
            .map(|a| a.addr())
            .collect();
        // X(0..8) scanned once per outer iteration.
        assert_eq!(xs.len(), 64);
        assert_eq!(&xs[0..8], &xs[8..16]);
    }
}
