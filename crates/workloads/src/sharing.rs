//! Multi-core sharing microkernels for the coherent memory system.
//!
//! The uniprocessor benchmarks say nothing about coherence, so the
//! multi-core experiments add two synthetic kernels whose sharing
//! patterns bracket the design space:
//!
//! * [`producer_consumer`] — *true* sharing: CPU 0 writes a block of
//!   words, the other CPUs read exactly those words back. Every
//!   invalidation is a data dependence; an invalidation-based protocol
//!   pays one coherence miss per handoff and no more.
//! * [`false_sharing`] — *false* sharing: each CPU hammers its own
//!   private word, but the words of all CPUs are packed into the same
//!   cache lines. No data is ever communicated, yet under MESI the lines
//!   ping-pong on every write. This is the pattern the false-sharing
//!   detector (word-mask classifier) must flag at ~100%, and where an
//!   update-based protocol like Dragon wins outright.
//!
//! Unlike the loop-nest stand-ins, these build cpu-tagged
//! [`sac_trace::Trace`]s directly — the interleaving *is* the workload.

use sac_trace::{Access, Trace, MAX_CPUS, WORD_BYTES};

/// Builds a producer/consumer handoff trace: per round, CPU 0 writes
/// `block_words` consecutive words starting at `base`, then CPUs
/// `1..cpus` each read the same words back.
///
/// Accesses are issued back-to-back (gap 1) in program order, already
/// interleaved: the handoff ordering is the point, so no round-robin
/// re-shuffle is applied.
///
/// # Panics
///
/// Panics if `cpus` is not in `2..=`[`MAX_CPUS`], or if `rounds` or
/// `block_words` is zero.
pub fn producer_consumer(cpus: usize, rounds: usize, block_words: u64) -> Trace {
    assert!(
        (2..=MAX_CPUS).contains(&cpus),
        "producer/consumer needs 2..={MAX_CPUS} CPUs"
    );
    assert!(rounds > 0, "need at least one round");
    assert!(block_words > 0, "need at least one word per round");
    let base = 0u64;
    let mut t = Trace::new("producer_consumer");
    for _ in 0..rounds {
        for w in 0..block_words {
            t.push(Access::write(base + w * WORD_BYTES).with_cpu(0));
        }
        for cpu in 1..cpus {
            for w in 0..block_words {
                t.push(Access::read(base + w * WORD_BYTES).with_cpu(cpu as u8));
            }
        }
    }
    t
}

/// Builds a false-sharing trace: each CPU increments (read + write) its
/// own private counter word, but all counters sit packed in the same
/// cache lines — `counters` words laid out contiguously per CPU slot.
///
/// With the standard 32-byte line and 8-byte words, `cpus = 2` and
/// `counters = 2` packs both CPUs' counters into one line; larger
/// `counters` spread the conflict over `cpus * counters / 4` lines.
///
/// # Panics
///
/// Panics if `cpus` is not in `2..=`[`MAX_CPUS`], or if `rounds` or
/// `counters` is zero.
pub fn false_sharing(cpus: usize, rounds: usize, counters: u64) -> Trace {
    assert!(
        (2..=MAX_CPUS).contains(&cpus),
        "false sharing needs 2..={MAX_CPUS} CPUs"
    );
    assert!(rounds > 0, "need at least one round");
    assert!(counters > 0, "need at least one counter per CPU");
    let mut t = Trace::new("false_sharing");
    for r in 0..rounds {
        for cpu in 0..cpus {
            // Counter words of CPU c occupy word slots c, cpus+c,
            // 2*cpus+c, ... — fully interleaved so every line carries
            // every CPU.
            let k = r as u64 % counters;
            let addr = (k * cpus as u64 + cpu as u64) * WORD_BYTES;
            t.push(Access::read(addr).with_cpu(cpu as u8));
            t.push(Access::write(addr).with_cpu(cpu as u8));
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_consumer_shape() {
        let t = producer_consumer(3, 5, 4);
        // Per round: 4 writes + 2 consumers * 4 reads.
        assert_eq!(t.len(), 5 * (4 + 2 * 4));
        assert_eq!(t.cpu_count(), 3);
        let writes = t.iter().filter(|a| a.kind().is_write()).count();
        assert_eq!(writes, 5 * 4);
    }

    #[test]
    fn producer_consumer_consumers_touch_produced_words() {
        let t = producer_consumer(2, 1, 2);
        let accesses: Vec<_> = t.iter().collect();
        assert!(accesses[0].kind().is_write() && accesses[0].cpu() == 0);
        let read = accesses[2];
        assert!(!read.kind().is_write() && read.cpu() == 1);
        assert_eq!(read.addr(), accesses[0].addr());
    }

    #[test]
    fn false_sharing_packs_cpus_into_shared_lines() {
        let t = false_sharing(2, 4, 1);
        // Both CPUs stay inside one 32-byte line.
        assert!(t.iter().all(|a| a.addr() < 32));
        assert_eq!(t.cpu_count(), 2);
        // ...but never touch each other's word.
        let mut words = [std::collections::BTreeSet::new(), Default::default()];
        for a in &t {
            words[a.cpu() as usize].insert(a.addr());
        }
        assert!(words[0].is_disjoint(&words[1]));
    }

    #[test]
    #[should_panic(expected = "needs 2..=")]
    fn single_cpu_rejected() {
        let _ = producer_consumer(1, 1, 1);
    }
}
