//! End-to-end tests of the `sac` command-line tool: trace generation,
//! round-tripping through both file formats, statistics and simulation.

use std::path::PathBuf;
use std::process::Command;

fn sac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sac"))
}

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sac-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn list_shows_benchmarks_and_configs() {
    let out = sac().arg("list").output().expect("run sac");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["MV", "SpMV", "soft", "standard", "stream-buffers"] {
        assert!(text.contains(needle), "missing {needle} in: {text}");
    }
}

#[test]
fn pseudo_prints_an_annotated_listing() {
    let out = sac()
        .args(["pseudo", "MV", "--small"])
        .output()
        .expect("run sac");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PROGRAM MV"));
    assert!(text.contains("DO j1"));
    assert!(text.contains("t=1 s=1"), "tag annotations present: {text}");
}

#[test]
fn trace_stats_simulate_pipeline() {
    let path = tmpfile("mv.sact");
    let out = sac()
        .args(["trace", "MV", "--small", "-o"])
        .arg(&path)
        .output()
        .expect("run sac trace");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = sac()
        .arg("stats")
        .arg(&path)
        .output()
        .expect("run sac stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tag classes"));
    assert!(text.contains("reuse distances"));

    let out = sac()
        .args(["simulate"])
        .arg(&path)
        .args(["-c", "standard", "-c", "soft"])
        .output()
        .expect("run sac simulate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("standard") && text.contains("soft"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn text_format_round_trips_through_simulate() {
    let path = tmpfile("mv.txt");
    let out = sac()
        .args(["trace", "MV", "--small", "--format", "text", "-o"])
        .arg(&path)
        .output()
        .expect("run sac trace");
    assert!(out.status.success());
    let content = std::fs::read_to_string(&path).expect("trace file");
    assert!(content.starts_with("# trace: MV"));

    let out = sac()
        .arg("simulate")
        .arg(&path)
        .args(["-c", "victim"])
        .output()
        .expect("run sac simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_arguments_fail_cleanly() {
    let out = sac().arg("frobnicate").output().expect("run sac");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = sac().args(["trace", "NopeMark"]).output().expect("run sac");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));

    let out = sac()
        .args(["simulate", "/nonexistent/trace.sact"])
        .output()
        .expect("run sac");
    assert!(!out.status.success());
}

/// Both `sac trace` and `sact-convert` validate their output path
/// through the one shared helper (`trace::io::create_output_buffered`),
/// up front: an unwritable destination fails immediately with the same
/// "cannot write <path>" message from either tool, before any trace is
/// generated or decoded.
#[test]
fn unwritable_output_path_fails_up_front_with_the_shared_message() {
    let bad = "/nonexistent-sac-dir/out.sact";

    let out = sac()
        .args(["trace", "MV", "--small", "-o", bad])
        .output()
        .expect("run sac trace");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot write"), "{err}");
    assert!(err.contains(bad), "{err}");

    // A valid input for the converter, so only the output path is at
    // fault.
    let input = tmpfile("convert-badout.sact");
    let out = sac()
        .args(["trace", "MV", "--small", "-o"])
        .arg(&input)
        .output()
        .expect("run sac trace");
    assert!(out.status.success());

    let out = Command::new(env!("CARGO_BIN_EXE_sact-convert"))
        .arg(&input)
        .args(["-o", bad])
        .output()
        .expect("run sact-convert");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot write"), "{err}");
    assert!(err.contains(bad), "{err}");
    std::fs::remove_file(&input).ok();
}

#[test]
fn deterministic_traces_across_invocations() {
    let a = tmpfile("det-a.sact");
    let b = tmpfile("det-b.sact");
    for p in [&a, &b] {
        let out = sac()
            .args(["trace", "SpMV", "--small", "--seed", "42", "-o"])
            .arg(p)
            .output()
            .expect("run sac trace");
        assert!(out.status.success());
    }
    let ca = std::fs::read(&a).expect("a");
    let cb = std::fs::read(&b).expect("b");
    assert_eq!(ca, cb, "same seed, same bytes");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}
