//! Integration tests pinning the paper's qualitative claims on the
//! scaled-down benchmark suite. These are the "shape" assertions behind
//! EXPERIMENTS.md: orderings and rough factors, not absolute numbers.

use software_assisted_caches::core::SoftCacheConfig;
use software_assisted_caches::experiments::{figures, Config, Suite};
use software_assisted_caches::simcache::{CacheGeometry, MemoryModel};
use software_assisted_caches::workloads::{blocked, mv};

fn suite() -> Suite {
    Suite::small()
}

/// §3.2: "software-assisted data caches perform better than standard
/// caches in any case, so software-assisted appear to be safe."
#[test]
fn soft_never_loses_to_standard() {
    let t = figures::fig06a(&suite());
    for (name, _) in t.rows() {
        let stand = t.get(name, "Stand.").unwrap();
        let soft = t.get(name, "Soft.").unwrap();
        assert!(soft <= stand * 1.02, "{name}: {soft:.3} vs {stand:.3}");
    }
}

/// §3.2: "the best performance is always obtained when both mechanisms
/// are combined" (we allow a small tolerance; see EXPERIMENTS.md for the
/// one benchmark where the margin is a few percent).
#[test]
fn combined_mechanisms_beat_each_alone() {
    let t = figures::fig06a(&suite());
    for (name, _) in t.rows() {
        let temp = t.get(name, "Temp.only").unwrap();
        let spat = t.get(name, "Spat.only").unwrap();
        let soft = t.get(name, "Soft.").unwrap();
        assert!(
            soft <= temp.min(spat) * 1.10,
            "{name}: soft {soft:.3} vs temp {temp:.3} / spat {spat:.3}"
        );
    }
}

/// §2.2 / Figure 3a: "the performance of cache bypassing is usually
/// poor" — plain bypassing loses to the software-assisted cache on every
/// benchmark and loses to the standard cache on most.
#[test]
fn plain_bypassing_is_poor() {
    let t = figures::fig03a(&suite());
    let mut worse_than_standard = 0;
    for (name, _) in t.rows() {
        let bypass = t.get(name, "Bypass").unwrap();
        let soft = t.get(name, "Soft.").unwrap();
        let stand = t.get(name, "Standard").unwrap();
        assert!(soft < bypass, "{name}: soft must beat bypassing");
        if bypass > stand {
            worse_than_standard += 1;
        }
    }
    assert!(worse_than_standard >= 5, "bypassing should usually lose");
}

/// Figure 3b: victim caches fix interferences but not pollution — on the
/// pollution-bound MV kernel the software-assisted cache must beat the
/// victim cache clearly.
#[test]
fn victim_cache_cannot_remove_pollution() {
    let t = figures::fig03b(&suite());
    let victim = t.get("MV", "Stand.+Victim").unwrap();
    let soft = t.get("MV", "Soft.").unwrap();
    assert!(
        soft < victim * 0.9,
        "soft {soft:.3} should clearly beat victim {victim:.3} on MV"
    );
}

/// §3.2 "Cache Line Size": a 64-byte *virtual* line usually beats a
/// 64-byte (and larger) *physical* line, and large virtual lines are
/// tolerated far better than large physical lines.
#[test]
fn virtual_lines_beat_physical_lines_on_mv() {
    let trace = mv::program(256).trace_default();
    let soft = Config::soft().run(&trace).amat();
    for ls in [64u64, 128, 256] {
        let stand = Config::Standard {
            geom: CacheGeometry::new(8 * 1024, ls, 1),
            mem: MemoryModel::default(),
        }
        .run(&trace)
        .amat();
        assert!(
            soft < stand,
            "virtual 64B ({soft:.3}) vs physical {ls}B ({stand:.3})"
        );
    }
}

/// Figure 10b: the advantage of software assistance grows (very
/// regularly) with memory latency.
#[test]
fn advantage_grows_with_latency() {
    let t = figures::fig10b(&suite());
    for (name, row) in t.rows() {
        for pair in row.windows(2) {
            assert!(
                pair[1] >= pair[0] - 0.05,
                "{name}: advantage should not shrink with latency ({row:?})"
            );
        }
        assert!(
            row[row.len() - 1] > row[0],
            "{name}: higher latency must increase the advantage"
        );
    }
}

/// §3.2: software-assisted caches "do not perform well for latencies
/// smaller than 10 cycles" — at 5 cycles the gain must be small compared
/// with the 30-cycle gain.
#[test]
fn low_latency_gains_are_small() {
    let t = figures::fig10b(&suite());
    for (name, row) in t.rows() {
        assert!(
            row[0] <= row[row.len() - 1] * 0.5 + 0.05,
            "{name}: 5-cycle gain {:.3} vs 30-cycle gain {:.3}",
            row[0],
            row[row.len() - 1]
        );
    }
}

/// Figure 11a: software control tolerates larger block sizes — the
/// standard cache degrades sharply at large blocks, the soft cache
/// barely.
#[test]
fn soft_control_tolerates_large_blocks() {
    let amat = |block: i64, soft: bool| {
        let trace = blocked::program(blocked::Params { n: 240, block }).trace_default();
        let cfg = if soft {
            Config::soft()
        } else {
            Config::standard()
        };
        cfg.run(&trace).amat()
    };
    let stand_small = amat(20, false);
    let stand_large = amat(240, false);
    let soft_small = amat(20, true);
    let soft_large = amat(240, true);
    // Standard degrades going to the largest block; soft stays flat or
    // improves.
    assert!(stand_large > stand_small, "standard should degrade");
    assert!(
        soft_large <= soft_small * 1.05,
        "soft should tolerate the large block ({soft_small:.3} -> {soft_large:.3})"
    );
}

/// Figure 12: software-assisted prefetching improves on the plain
/// software-assisted cache, and beats tag-blind hardware prefetching
/// overall.
#[test]
fn soft_prefetch_improves_soft() {
    let t = figures::fig12(&suite());
    let mut soft_pf_wins = 0;
    for (name, _) in t.rows() {
        let soft = t.get(name, "Soft.").unwrap();
        let soft_pf = t.get(name, "Soft.+Pf").unwrap();
        let stand_pf = t.get(name, "Stand.+Pf").unwrap();
        assert!(
            soft_pf <= soft * 1.02,
            "{name}: prefetch must not hurt ({soft:.3} -> {soft_pf:.3})"
        );
        if soft_pf <= stand_pf {
            soft_pf_wins += 1;
        }
    }
    assert!(
        soft_pf_wins >= 6,
        "software-assisted prefetch should usually win"
    );
}

/// Figure 7a: the combined mechanism does not significantly increase
/// memory traffic relative to the standard cache.
#[test]
fn traffic_is_not_significantly_increased() {
    let t = figures::fig07a(&suite());
    for (name, _) in t.rows() {
        let stand = t.get(name, "Stand.").unwrap();
        let soft = t.get(name, "Soft.").unwrap();
        assert!(
            soft <= stand * 1.30,
            "{name}: traffic {stand:.3} -> {soft:.3}"
        );
    }
}

/// Figure 9a: larger caches still benefit, and the *absolute* miss
/// reduction is positive at every size.
#[test]
fn large_caches_still_benefit() {
    let t = figures::fig09a(&suite());
    for (name, row) in t.rows() {
        for (col, v) in t.columns().iter().zip(row) {
            assert!(
                *v >= -1.0,
                "{name}/{col}: soft control should not add misses ({v:.1}%)"
            );
        }
    }
}

/// Figure 9b: the simplified scheme (replacement bias, no bounce-back
/// cache) performs in the same league as the full soft 2-way mechanism.
#[test]
fn simplified_soft_is_competitive() {
    let t = figures::fig09b(&suite());
    let mut close = 0;
    for (name, _) in t.rows() {
        let twoway = t.get(name, "2-way").unwrap();
        let soft = t.get(name, "Soft.2-way").unwrap();
        let simpl = t.get(name, "Simpl.soft").unwrap();
        assert!(soft <= twoway * 1.02, "{name}: soft 2-way must not lose");
        if simpl <= soft * 1.25 {
            close += 1;
        }
    }
    assert!(close >= 6, "simplified scheme should usually be close");
}

/// §4.1 / Figure 6a: the user directive on the sparse kernel's X vector
/// is what unlocks its scarce locality.
#[test]
fn spmv_directive_matters() {
    let suite = suite();
    let trace = suite.trace("SpMV").unwrap();
    let soft = Config::soft().run(trace);
    let temp_only = Config::Soft(SoftCacheConfig::temporal_only()).run(trace);
    let stand = Config::standard().run(trace);
    assert!(soft.amat() < stand.amat());
    assert!(temp_only.amat() < stand.amat());
}
