//! Golden-trace regression test: a tiny committed trace with exact
//! expected counters for the software-assisted cache and the
//! direct-mapped baseline.
//!
//! `tests/data/golden.trace` is a hand-built 280-reference mix — a
//! stride-1 spatial sweep, a hot temporal scalar set, an 8 KB-apart
//! conflict pair, and an untagged write burst — chosen so every counter
//! below is nonzero-interesting. The expected values were recorded from
//! the engines at the time the trace was committed; any drift in hit/miss
//! accounting, cycle costing, fetch width or write handling trips this
//! test with the exact counter that moved.

use software_assisted_caches::core::{SoftCache, SoftCacheConfig};
use software_assisted_caches::simcache::{CacheSim, Metrics, StandardCache};
use software_assisted_caches::trace::io::read_text;
use software_assisted_caches::trace::Trace;

fn golden() -> Trace {
    let text = include_str!("data/golden.trace");
    let trace = read_text(text.as_bytes()).expect("golden trace parses");
    assert_eq!(trace.name(), "golden");
    assert_eq!(trace.len(), 280);
    trace
}

#[test]
fn standard_cache_counters_match_golden() {
    let trace = golden();
    let mut stand = StandardCache::new(Default::default(), Default::default());
    stand.run(&trace);
    let expected = Metrics {
        refs: 280,
        reads: 240,
        writes: 40,
        main_hits: 198,
        aux_hits: 0,
        misses: 82,
        bypasses: 0,
        mem_cycles: 2002,
        lines_fetched: 82,
        words_fetched: 328,
        writebacks: 24,
        bounces: 0,
        swaps: 0,
        prefetches: 0,
        useful_prefetches: 0,
        stall_cycles: 0,
    };
    assert_eq!(*stand.metrics(), expected);
}

#[test]
fn soft_cache_counters_match_golden() {
    let trace = golden();
    let mut soft = SoftCache::new(SoftCacheConfig::soft());
    soft.run(&trace);
    let expected = Metrics {
        refs: 280,
        reads: 240,
        writes: 40,
        main_hits: 206,
        aux_hits: 46,
        misses: 28,
        bypasses: 0,
        mem_cycles: 994,
        lines_fetched: 36,
        words_fetched: 144,
        writebacks: 1,
        bounces: 2,
        swaps: 46,
        prefetches: 0,
        useful_prefetches: 0,
        stall_cycles: 18,
    };
    assert_eq!(*soft.metrics(), expected);
}

#[test]
fn soft_cache_beats_the_baseline_on_the_golden_trace() {
    // The relationship the whole paper rests on, pinned on a trace small
    // enough to debug by hand: fewer misses, fewer words fetched, lower
    // AMAT.
    let trace = golden();
    let mut stand = StandardCache::new(Default::default(), Default::default());
    stand.run(&trace);
    let mut soft = SoftCache::new(SoftCacheConfig::soft());
    soft.run(&trace);
    assert!(soft.metrics().misses < stand.metrics().misses);
    assert!(soft.metrics().words_fetched < stand.metrics().words_fetched);
    assert!(soft.metrics().amat() < stand.metrics().amat());
}
