//! The timeline reconciliation invariant (DESIGN.md §13), end to end:
//! folding a run into fixed-width windows loses nothing. For every
//! cache organization, summing the per-window deltas must reproduce
//! the unprobed engine's global `Metrics` counters *exactly* — on the
//! committed golden trace and on seeded random traces — and attaching
//! the `Timeline` probe must not perturb the simulation itself.

use software_assisted_caches::experiments::explain::{explain_timeline, run_probed};
use software_assisted_caches::experiments::Config;
use software_assisted_caches::obs::Timeline;
use software_assisted_caches::simcache::{BypassMode, CacheGeometry, MemoryModel};
use software_assisted_caches::trace::io::read_text;
use software_assisted_caches::trace::rng::SplitMix64;
use software_assisted_caches::trace::{Access, Trace};

/// All eight cache organizations, at the shapes the figures use.
fn all_configs() -> Vec<(&'static str, Config)> {
    let geom = CacheGeometry::standard();
    let mem = MemoryModel::default();
    vec![
        ("standard", Config::standard()),
        ("victim", Config::standard_victim()),
        (
            "bypass",
            Config::Bypass {
                geom,
                mem,
                mode: BypassMode::Buffered { lines: 4 },
            },
        ),
        (
            "prefetch",
            Config::HwPrefetch {
                geom,
                mem,
                lines: 8,
            },
        ),
        (
            "stream",
            Config::StreamBuffer {
                geom,
                mem,
                buffers: 4,
                depth: 4,
            },
        ),
        ("colassoc", Config::ColumnAssoc { geom, mem }),
        (
            "assist",
            Config::Assist {
                geom,
                mem,
                lines: 16,
            },
        ),
        ("soft", Config::soft()),
    ]
}

fn golden() -> Trace {
    let text = include_str!("data/golden.trace");
    let trace = read_text(text.as_bytes()).expect("golden trace parses");
    assert_eq!(trace.len(), 280);
    trace
}

fn random_trace(seed: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let len = 2_000 + rng.below(3_000);
    (0..len)
        .map(|_| {
            let addr = rng.below(1 << 14) * 8;
            let a = if rng.chance(0.7) {
                Access::read(addr)
            } else {
                Access::write(addr)
            };
            a.with_temporal(rng.chance(0.5))
                .with_spatial(rng.chance(0.5))
                .with_gap(1 + rng.below(7) as u32)
        })
        .collect()
}

/// Window sums equal the *unprobed* engine's global counters on the
/// golden trace, for every organization. `explain_timeline` already
/// verifies its own probed run; comparing against a separate
/// `Config::run` additionally pins that the probe did not perturb the
/// simulation.
#[test]
fn golden_trace_windows_reconcile_for_all_organizations() {
    let trace = golden();
    for (name, config) in all_configs() {
        let label = format!("golden/{name}");
        let (tl, probed) = explain_timeline(&label, &config, &trace, 64)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let unprobed = config.run(&trace);
        assert_eq!(probed, unprobed, "{label}: probe perturbed the run");
        let t = tl.totals();
        assert_eq!(t.refs, unprobed.refs, "{label}: refs");
        assert_eq!(t.reads, unprobed.reads, "{label}: reads");
        assert_eq!(t.writes, unprobed.writes, "{label}: writes");
        assert_eq!(t.misses, unprobed.misses, "{label}: misses");
        assert_eq!(t.bounces, unprobed.bounces, "{label}: bounces");
        assert_eq!(t.writebacks, unprobed.writebacks, "{label}: writebacks");
        assert_eq!(t.mem_cycles, unprobed.mem_cycles, "{label}: mem_cycles");
        assert_eq!(
            t.compulsory + t.capacity + t.conflict,
            t.misses,
            "{label}: 3C mix must partition the misses"
        );
    }
}

/// Driving with chunks of exactly the window width makes every window
/// except the last exactly that wide, and the windows partition the
/// run.
#[test]
fn golden_trace_windows_are_exact_and_partition_the_run() {
    let trace = golden();
    let (tl, m) = explain_timeline("golden/width", &Config::soft(), &trace, 64).unwrap();
    let windows = tl.windows();
    assert_eq!(windows.len(), 5, "ceil(280 / 64)");
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.index, i);
        assert_eq!(w.start_ref, 64 * i as u64);
        if i + 1 < windows.len() {
            assert_eq!(w.delta.refs, 64, "window {i} is exactly one width");
        }
    }
    assert_eq!(windows.last().unwrap().delta.refs, 280 % 64);
    let sum: u64 = windows.iter().map(|w| w.delta.refs).sum();
    assert_eq!(sum, m.refs);
    assert!(!tl.phases().is_empty());
}

/// The reconciliation invariant holds on seeded random traces for
/// every organization and several window widths (including widths that
/// do not divide the trace length).
#[test]
fn random_traces_reconcile_for_all_organizations() {
    for seed in [1u64, 2, 3] {
        let trace = random_trace(0x5AC0_7100 + seed);
        for (name, config) in all_configs() {
            for window in [128u64, 777] {
                let label = format!("rand{seed}/{name}/w{window}");
                let (tl, m) = explain_timeline(&label, &config, &trace, window)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(tl.totals().refs, trace.len() as u64, "{label}");
                assert_eq!(m, config.run(&trace), "{label}: probe perturbed the run");
            }
        }
    }
}

/// A timeline fed through `run_probed` with a chunk size that is *not*
/// the window width still reconciles: windows then close at the first
/// fold at-or-past each nominal boundary (they widen, never drop
/// references).
#[test]
fn misaligned_chunks_still_reconcile() {
    let trace = random_trace(0x5AC0_71FF);
    let tl = Timeline::new(100, 64);
    let (m, mut tl) = run_probed(&Config::soft(), &trace, tl, 33);
    tl.finish();
    software_assisted_caches::experiments::explain::verify_timeline("misaligned", &tl, &m)
        .expect("window sums reconcile even with misaligned folds");
    let windows = tl.windows();
    for w in &windows[..windows.len() - 1] {
        assert_eq!(w.delta.refs % 33, 0, "windows close only at chunk folds");
    }
}
