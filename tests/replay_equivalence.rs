//! Replay-path equivalence: the streamed chunked replay (SACT decode one
//! chunk at a time, every engine advancing per chunk), the chunked
//! whole-`Vec` replay and the materialized one-config-at-a-time replay
//! must produce identical [`Metrics`] — the figure suite's byte-identical
//! output rests on this.

use software_assisted_caches::experiments::explain::explain_config;
use software_assisted_caches::experiments::runner::ReplayBatch;
use software_assisted_caches::experiments::{Config, Suite};
use software_assisted_caches::obs::{CountingProbe, ObsConfig, TracingProbe};
use software_assisted_caches::simcache::{LineRuns, Metrics};
use software_assisted_caches::trace::io::{read_text, write_binary, ChunkedReader};
use software_assisted_caches::trace::Trace;

fn golden() -> Trace {
    let text = include_str!("data/golden.trace");
    let trace = read_text(text.as_bytes()).expect("golden trace parses");
    assert_eq!(trace.len(), 280);
    trace
}

/// Every organization in the study — all of them run on the shared
/// policy engine, so all of them must replay identically on every path.
/// The set is [`Config::all_organizations`], the same one the fused
/// benchmarks and the CI bench guard drive.
fn configs() -> Vec<(String, Config)> {
    Config::all_organizations()
        .iter()
        .map(|(name, config)| (format!("equiv/{name}"), *config))
        .collect()
}

/// Materialized baseline: each config builds its own engine and replays
/// the whole trace alone.
fn one_at_a_time(cells: &[(String, Config)], trace: &Trace) -> Vec<Metrics> {
    cells.iter().map(|(_, cfg)| cfg.run(trace)).collect()
}

/// Batched replay over the in-memory trace, chunked.
fn batched(cells: &[(String, Config)], trace: &Trace) -> Vec<Metrics> {
    let mut batch = ReplayBatch::new();
    for (label, cfg) in cells {
        batch.push(label.clone(), cfg);
    }
    batch.replay(trace)
}

/// Streamed replay: serialize to SACT bytes, then replay straight off the
/// chunked reader without materializing the trace.
fn streamed(cells: &[(String, Config)], trace: &Trace) -> Vec<Metrics> {
    let mut bytes = Vec::new();
    write_binary(trace, &mut bytes).expect("in-memory SACT write");
    let mut reader = ChunkedReader::new(&bytes[..]).expect("valid SACT header");
    let mut batch = ReplayBatch::new();
    for (label, cfg) in cells {
        batch.push(label.clone(), cfg);
    }
    batch.replay_reader(&mut reader).expect("valid SACT stream")
}

/// A small chunk size so even the 280-reference golden trace crosses
/// several chunk boundaries.
fn streamed_small_chunks(cells: &[(String, Config)], trace: &Trace) -> Vec<Metrics> {
    let mut bytes = Vec::new();
    write_binary(trace, &mut bytes).expect("in-memory SACT write");
    let mut reader = ChunkedReader::with_chunk_size(&bytes[..], 7).expect("valid SACT header");
    let mut batch = ReplayBatch::new();
    for (label, cfg) in cells {
        batch.push(label.clone(), cfg);
    }
    batch.replay_reader(&mut reader).expect("valid SACT stream")
}

#[test]
fn golden_trace_replays_identically_on_all_paths() {
    let trace = golden();
    let cells = configs();
    let solo = one_at_a_time(&cells, &trace);
    assert_eq!(solo, batched(&cells, &trace), "batched vs solo");
    assert_eq!(solo, streamed(&cells, &trace), "streamed vs solo");
    assert_eq!(
        solo,
        streamed_small_chunks(&cells, &trace),
        "7-entry chunks vs solo"
    );
}

/// Drives `engine` over `trace`, either materialized (one `run_chunk`
/// over the whole slice) or chunked (7-entry chunks, so the 280-entry
/// golden trace crosses many chunk boundaries).
fn drive(
    engine: &mut dyn software_assisted_caches::simcache::CacheSim,
    trace: &Trace,
    chunked: bool,
) -> Metrics {
    if chunked {
        for chunk in trace.as_slice().chunks(7) {
            engine.run_chunk(chunk);
        }
    } else {
        engine.run_chunk(trace.as_slice());
    }
    *engine.metrics()
}

/// Attaching a probe must not change a single counter: the probe layer
/// observes the engines, it never steers them. Checked for every
/// organization, with both the full `TracingProbe` and the tiny
/// `CountingProbe`, in materialized and chunked modes.
#[test]
fn probed_replay_is_metric_identical_to_unprobed() {
    let trace = golden();
    for (label, config) in configs() {
        let (geom, _) = config.shape();
        let obs = || ObsConfig::for_cache(geom.lines(), geom.sets(), geom.line_bytes());
        for chunked in [false, true] {
            let plain = drive(&mut *config.build(), &trace, chunked);
            let counting = drive(
                &mut *config.build_probed(CountingProbe::default()),
                &trace,
                chunked,
            );
            let tracing = drive(
                &mut *config.build_probed(TracingProbe::new(obs())),
                &trace,
                chunked,
            );
            assert_eq!(plain, counting, "{label}+counting chunked={chunked}");
            assert_eq!(plain, tracing, "{label}+tracing chunked={chunked}");
        }
    }
}

/// The explainer's telemetry reconciles exactly with the engine counters
/// on the golden trace, and its instrumented run reproduces the same
/// metrics as the plain replay path — for every organization.
#[test]
fn golden_trace_explain_reconciles_exactly() {
    let trace = golden();
    for (label, config) in configs() {
        let e = explain_config(&label, &config, &trace, 64, 1)
            .expect("golden trace telemetry reconciles");
        assert_eq!(e.metrics, config.run(&trace), "{label}");
        e.verify().expect("explicit re-verification holds");
    }
}

/// Like [`drive`], but through the SoA fast path.
fn drive_soa(
    engine: &mut dyn software_assisted_caches::simcache::CacheSim,
    trace: &Trace,
    chunked: bool,
) -> Metrics {
    if chunked {
        for chunk in trace.as_slice().chunks(7) {
            engine.run_chunk_soa(chunk);
        }
    } else {
        engine.run_chunk_soa(trace.as_slice());
    }
    *engine.metrics()
}

/// A random trace with every kind of reference the tag bits can express:
/// reads/writes, temporal/spatial tags, spatial levels and issue gaps,
/// over a footprint that makes every organization hit *and* miss.
fn random_trace(seed: u64, len: usize) -> Trace {
    let mut rng = software_assisted_caches::trace::rng::SplitMix64::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            // Mix dense (hit-heavy, same-line runs) and sparse regions.
            let addr = if rng.chance(0.6) {
                rng.below(1 << 12)
            } else {
                rng.below(1 << 17)
            };
            let a = if rng.chance(0.3) {
                software_assisted_caches::trace::Access::write(addr)
            } else {
                software_assisted_caches::trace::Access::read(addr)
            };
            a.with_temporal(rng.chance(0.4))
                .with_spatial(rng.chance(0.5))
                .with_spatial_level(rng.below(4) as u8)
                .with_gap(rng.below(6) as u32)
                .with_instr(rng.below(32) as u32)
        })
        .collect()
}

/// The tentpole guarantee: the SoA probe path (packed tag lanes, way
/// memo, hit-run batching) is *byte-identical* to the scalar reference
/// path for every organization, on the golden trace and on random
/// traces, materialized and chunked.
#[test]
fn soa_replay_is_byte_identical_to_scalar_replay() {
    let mut traces = vec![("golden".to_string(), golden())];
    for seed in 0..6u64 {
        traces.push((format!("random{seed}"), random_trace(0x5AC6 + seed, 4_000)));
    }
    for (tname, trace) in &traces {
        for (label, config) in configs() {
            for chunked in [false, true] {
                let scalar = drive(&mut *config.build(), trace, chunked);
                let soa = drive_soa(&mut *config.build(), trace, chunked);
                assert_eq!(scalar, soa, "{tname}/{label} chunked={chunked}");
            }
        }
    }
}

/// The SoA path must stay identical under observation too: probes see
/// the same reference stream, and metrics do not move.
#[test]
fn soa_probed_replay_is_metric_identical_to_scalar() {
    let trace = golden();
    for (label, config) in configs() {
        let (geom, _) = config.shape();
        let obs = ObsConfig::for_cache(geom.lines(), geom.sets(), geom.line_bytes());
        let scalar = drive(&mut *config.build(), &trace, true);
        let counting = drive_soa(
            &mut *config.build_probed(CountingProbe::default()),
            &trace,
            true,
        );
        let tracing = drive_soa(
            &mut *config.build_probed(TracingProbe::new(obs)),
            &trace,
            true,
        );
        assert_eq!(scalar, counting, "{label}+counting soa");
        assert_eq!(scalar, tracing, "{label}+tracing soa");
    }
}

/// Batch-level differential: the same batch replayed under both
/// [`ProbeMode`]s gives the same metrics (this is the switch the
/// `--scalar` flag flips).
#[test]
fn probe_modes_agree_at_the_batch_level() {
    use software_assisted_caches::experiments::runner::{probe_mode, set_probe_mode, ProbeMode};
    let trace = random_trace(0xD1FF, 6_000);
    let cells = configs();
    // The mode is process-global; other tests in this binary do not
    // touch it, and we restore the default before asserting.
    set_probe_mode(ProbeMode::Scalar);
    let scalar = batched(&cells, &trace);
    set_probe_mode(ProbeMode::Soa);
    assert_eq!(probe_mode(), ProbeMode::Soa);
    let soa = batched(&cells, &trace);
    assert_eq!(scalar, soa);
    assert_eq!(soa, one_at_a_time(&cells, &trace), "soa vs solo");
}

/// Like [`drive`], but through the fused path: the chunk is decoded once
/// into a shared [`LineRuns`] arena under the engine's own line shift —
/// exactly what a [`ReplayBatch`] does for every engine of a batch.
fn drive_fused(
    engine: &mut dyn software_assisted_caches::simcache::CacheSim,
    trace: &Trace,
    chunked: bool,
) -> Metrics {
    let shift = engine
        .fused_shift()
        .expect("every stock organization replays fused");
    let mut runs = LineRuns::new();
    let chunks: Vec<&[software_assisted_caches::trace::Access]> = if chunked {
        trace.as_slice().chunks(7).collect()
    } else {
        vec![trace.as_slice()]
    };
    for chunk in chunks {
        runs.compute_into(chunk, shift);
        engine.run_chunk_fused(chunk, &runs);
    }
    *engine.metrics()
}

/// A random trace where a slice of the addresses have bit 63 set — the
/// top-of-address-space corner where packed probe lanes must fall back
/// to the scalar path rather than truncate tags.
fn high_address_trace(seed: u64, len: usize) -> Trace {
    let mut rng = software_assisted_caches::trace::rng::SplitMix64::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let mut addr = rng.below(1 << 14);
            if rng.chance(0.25) {
                addr |= 1 << 63;
            }
            let a = if rng.chance(0.3) {
                software_assisted_caches::trace::Access::write(addr)
            } else {
                software_assisted_caches::trace::Access::read(addr)
            };
            a.with_temporal(rng.chance(0.4))
                .with_gap(rng.below(4) as u32)
        })
        .collect()
}

/// The fused-pass tentpole guarantee: decoding a chunk once into the
/// shared line-run arena and replaying run-by-run is *byte-identical* to
/// the per-engine SoA path and to the scalar reference path — for every
/// organization, on the golden trace, on random tagged traces, on
/// bit-63 fallback addresses, materialized and across misaligned 7-entry
/// chunk boundaries.
#[test]
fn fused_replay_is_byte_identical_to_soa_and_scalar() {
    let mut traces = vec![("golden".to_string(), golden())];
    for seed in 0..4u64 {
        traces.push((format!("random{seed}"), random_trace(0xF5ED + seed, 4_000)));
    }
    traces.push(("high63".to_string(), high_address_trace(0x63B17, 4_000)));
    for (tname, trace) in &traces {
        for (label, config) in configs() {
            for chunked in [false, true] {
                let scalar = drive(&mut *config.build(), trace, chunked);
                let soa = drive_soa(&mut *config.build(), trace, chunked);
                let fused = drive_fused(&mut *config.build(), trace, chunked);
                assert_eq!(scalar, soa, "{tname}/{label} chunked={chunked} (soa)");
                assert_eq!(scalar, fused, "{tname}/{label} chunked={chunked} (fused)");
            }
        }
    }
}

/// Batch-level differential for the fused mode switch (the default; the
/// `--soa` and `--scalar` flags select its twins): one shared decode
/// feeding all eight engines gives the same metrics as each engine
/// deciding alone and as solo replay.
#[test]
fn fused_batch_mode_agrees_with_soa_and_solo() {
    use software_assisted_caches::experiments::runner::{probe_mode, set_probe_mode, ProbeMode};
    let cells = configs();
    for trace in [
        random_trace(0xFA57, 6_000),
        high_address_trace(0x63B18, 6_000),
    ] {
        set_probe_mode(ProbeMode::Soa);
        let soa = batched(&cells, &trace);
        set_probe_mode(ProbeMode::Fused);
        assert_eq!(probe_mode(), ProbeMode::Fused);
        let fused = batched(&cells, &trace);
        assert_eq!(soa, fused);
        assert_eq!(fused, one_at_a_time(&cells, &trace), "fused vs solo");
    }
}

#[test]
fn generated_suite_trace_replays_identically_on_all_paths() {
    // One real generated workload trace (small scale keeps the test fast).
    let suite = Suite::small();
    let trace = suite.trace("MV").expect("MV in small suite").clone();
    let cells = configs();
    let solo = one_at_a_time(&cells, &trace);
    assert_eq!(solo, batched(&cells, &trace), "batched vs solo");
    assert_eq!(solo, streamed(&cells, &trace), "streamed vs solo");
}

/// Streamed replay off the compact SAC2 format: serialize with the
/// delta encoder, replay through the sniffing `TraceReader` — the
/// Metrics must match the SACT stream and the materialized replay
/// bit-for-bit, across every organization, including chunk sizes that
/// split SAC2 runs mid-stream.
#[test]
fn sact2_streamed_replay_matches_all_other_paths() {
    use software_assisted_caches::trace::io::{write_binary2, TraceReader};

    for trace in [golden(), random_trace(0x5AC2_2026, 4_000)] {
        let cells = configs();
        let mut bytes2 = Vec::new();
        write_binary2(&trace, &mut bytes2).expect("in-memory SAC2 write");

        for chunk_entries in [usize::MAX, 7] {
            let mut reader = if chunk_entries == usize::MAX {
                TraceReader::new(&bytes2[..]).expect("valid SAC2 header")
            } else {
                TraceReader::with_chunk_size(&bytes2[..], chunk_entries).expect("valid SAC2 header")
            };
            assert_eq!(reader.format(), "SAC2");
            let mut batch = ReplayBatch::new();
            for (label, cfg) in &cells {
                batch.push(label.clone(), cfg);
            }
            let from_sact2 = batch.replay_reader(&mut reader).expect("valid SAC2 stream");
            assert_eq!(from_sact2, streamed(&cells, &trace), "sact2 vs sact stream");
            assert_eq!(from_sact2, batched(&cells, &trace), "sact2 vs materialized");
        }
    }
}
