//! Replay-path equivalence: the streamed chunked replay (SACT decode one
//! chunk at a time, every engine advancing per chunk), the chunked
//! whole-`Vec` replay and the materialized one-config-at-a-time replay
//! must produce identical [`Metrics`] — the figure suite's byte-identical
//! output rests on this.

use software_assisted_caches::experiments::runner::ReplayBatch;
use software_assisted_caches::experiments::{Config, Suite};
use software_assisted_caches::simcache::Metrics;
use software_assisted_caches::trace::io::{read_text, write_binary, ChunkedReader};
use software_assisted_caches::trace::Trace;

fn golden() -> Trace {
    let text = include_str!("data/golden.trace");
    let trace = read_text(text.as_bytes()).expect("golden trace parses");
    assert_eq!(trace.len(), 280);
    trace
}

fn configs() -> Vec<(String, Config)> {
    vec![
        ("equiv/standard".to_string(), Config::standard()),
        ("equiv/victim".to_string(), Config::standard_victim()),
        ("equiv/soft".to_string(), Config::soft()),
    ]
}

/// Materialized baseline: each config builds its own engine and replays
/// the whole trace alone.
fn one_at_a_time(cells: &[(String, Config)], trace: &Trace) -> Vec<Metrics> {
    cells.iter().map(|(_, cfg)| cfg.run(trace)).collect()
}

/// Batched replay over the in-memory trace, chunked.
fn batched(cells: &[(String, Config)], trace: &Trace) -> Vec<Metrics> {
    let mut batch = ReplayBatch::new();
    for (label, cfg) in cells {
        batch.push(label.clone(), cfg);
    }
    batch.replay(trace)
}

/// Streamed replay: serialize to SACT bytes, then replay straight off the
/// chunked reader without materializing the trace.
fn streamed(cells: &[(String, Config)], trace: &Trace) -> Vec<Metrics> {
    let mut bytes = Vec::new();
    write_binary(trace, &mut bytes).expect("in-memory SACT write");
    let mut reader = ChunkedReader::new(&bytes[..]).expect("valid SACT header");
    let mut batch = ReplayBatch::new();
    for (label, cfg) in cells {
        batch.push(label.clone(), cfg);
    }
    batch.replay_reader(&mut reader).expect("valid SACT stream")
}

/// A small chunk size so even the 280-reference golden trace crosses
/// several chunk boundaries.
fn streamed_small_chunks(cells: &[(String, Config)], trace: &Trace) -> Vec<Metrics> {
    let mut bytes = Vec::new();
    write_binary(trace, &mut bytes).expect("in-memory SACT write");
    let mut reader = ChunkedReader::with_chunk_size(&bytes[..], 7).expect("valid SACT header");
    let mut batch = ReplayBatch::new();
    for (label, cfg) in cells {
        batch.push(label.clone(), cfg);
    }
    batch.replay_reader(&mut reader).expect("valid SACT stream")
}

#[test]
fn golden_trace_replays_identically_on_all_paths() {
    let trace = golden();
    let cells = configs();
    let solo = one_at_a_time(&cells, &trace);
    assert_eq!(solo, batched(&cells, &trace), "batched vs solo");
    assert_eq!(solo, streamed(&cells, &trace), "streamed vs solo");
    assert_eq!(
        solo,
        streamed_small_chunks(&cells, &trace),
        "7-entry chunks vs solo"
    );
}

#[test]
fn generated_suite_trace_replays_identically_on_all_paths() {
    // One real generated workload trace (small scale keeps the test fast).
    let suite = Suite::small();
    let trace = suite.trace("MV").expect("MV in small suite").clone();
    let cells = configs();
    let solo = one_at_a_time(&cells, &trace);
    assert_eq!(solo, batched(&cells, &trace), "batched vs solo");
    assert_eq!(solo, streamed(&cells, &trace), "streamed vs solo");
}
