//! Cross-engine equivalence: with its mechanisms disabled, the
//! software-assisted cache must degenerate into the corresponding
//! baseline organization — same hits, same misses, same write-backs.

use software_assisted_caches::core::{SoftCache, SoftCacheConfig};
use software_assisted_caches::simcache::{
    CacheGeometry, CacheSim, MemoryModel, StandardCache, VictimCache,
};
use software_assisted_caches::trace::{Access, GapModel, Trace};

/// A pseudo-random but deterministic mixed trace with tags.
fn mixed_trace(n: usize, footprint_lines: u64) -> Trace {
    let mut gaps = GapModel::seeded(99);
    let mut t = Trace::new("mixed");
    let mut state = 0x12345678u64;
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let line = (state >> 33) % footprint_lines;
        let addr = line * 32 + (state >> 20) % 4 * 8;
        let a = if state.is_multiple_of(5) {
            Access::write(addr)
        } else {
            Access::read(addr)
        };
        t.push(
            a.with_temporal(state.is_multiple_of(3))
                .with_spatial(state.is_multiple_of(2))
                .with_gap(gaps.sample())
                .with_instr((i % 17) as u32),
        );
    }
    t
}

/// Sequential stride-1 trace (all lines visited once).
fn stream_trace(words: u64) -> Trace {
    (0..words)
        .map(|i| Access::read(i * 8).with_spatial(true))
        .collect()
}

fn neutered_soft(geom: CacheGeometry) -> SoftCacheConfig {
    let mut cfg = SoftCacheConfig::soft().with_geometry(geom);
    cfg.virtual_line_bytes = geom.line_bytes();
    cfg.bounce_lines = 0;
    cfg.use_temporal = false;
    cfg.use_spatial = false;
    cfg
}

#[test]
fn soft_without_mechanisms_equals_standard_cache() {
    for geom in [
        CacheGeometry::standard(),
        CacheGeometry::new(1024, 32, 1),
        CacheGeometry::new(8 * 1024, 32, 2),
        CacheGeometry::new(4 * 1024, 64, 4),
    ] {
        let trace = mixed_trace(50_000, 4 * geom.lines());
        let mut soft = SoftCache::new(neutered_soft(geom));
        let mut standard = StandardCache::new(geom, MemoryModel::default());
        soft.run(&trace);
        standard.run(&trace);
        let (s, b) = (soft.metrics(), standard.metrics());
        assert_eq!(s.misses, b.misses, "{geom}");
        assert_eq!(s.main_hits, b.main_hits, "{geom}");
        assert_eq!(s.writebacks, b.writebacks, "{geom}");
        assert_eq!(s.words_fetched, b.words_fetched, "{geom}");
        assert_eq!(s.mem_cycles, b.mem_cycles, "{geom}");
    }
}

#[test]
fn soft_with_plain_victim_cache_equals_victim_baseline() {
    let geom = CacheGeometry::new(1024, 32, 1);
    let trace = mixed_trace(50_000, 4 * geom.lines());
    let mut cfg = SoftCacheConfig::soft().with_geometry(geom);
    cfg.virtual_line_bytes = 32;
    cfg.use_temporal = false;
    cfg.use_spatial = false;
    cfg.bounce_lines = 8;
    let mut soft = SoftCache::new(cfg);
    let mut victim = VictimCache::new(geom, MemoryModel::default(), 8);
    soft.run(&trace);
    victim.run(&trace);
    let (s, v) = (soft.metrics(), victim.metrics());
    assert_eq!(s.misses, v.misses);
    assert_eq!(s.main_hits, v.main_hits);
    assert_eq!(s.aux_hits, v.aux_hits);
    assert_eq!(s.writebacks, v.writebacks);
}

#[test]
fn every_reference_is_classified_exactly_once() {
    let trace = mixed_trace(30_000, 2048);
    let mut soft = SoftCache::new(SoftCacheConfig::soft());
    soft.run(&trace);
    let m = soft.metrics();
    assert_eq!(m.refs as usize, trace.len());
    assert_eq!(m.main_hits + m.aux_hits + m.misses, m.refs);
    assert_eq!(m.reads + m.writes, m.refs);
}

#[test]
fn virtual_lines_halve_stream_misses() {
    let trace = stream_trace(32_768);
    let mut soft = SoftCache::new(SoftCacheConfig::soft());
    let mut stand = StandardCache::new(CacheGeometry::standard(), MemoryModel::default());
    soft.run(&trace);
    stand.run(&trace);
    // One miss per 64-byte virtual line vs one per 32-byte physical line.
    assert_eq!(stand.metrics().misses, 32_768 / 4);
    assert_eq!(soft.metrics().misses, 32_768 / 8);
    // Same words fetched: virtual lines do not add traffic on a pure
    // stream.
    assert_eq!(soft.metrics().words_fetched, stand.metrics().words_fetched);
}

#[test]
fn soft_is_deterministic_across_runs() {
    let trace = mixed_trace(20_000, 1024);
    let run = || {
        let mut c = SoftCache::new(SoftCacheConfig::soft().with_prefetch(true));
        c.run(&trace);
        *c.metrics()
    };
    assert_eq!(run(), run());
}

#[test]
fn bounce_back_cache_is_strictly_better_than_nothing_on_mv_pattern() {
    // Synthetic MV-like pattern: a small temporal vector thrashed by a
    // large stream.
    let mut trace = Trace::new("mv-like");
    let vector_lines = 128u64; // 4 KB temporal vector
    let stream_lines = 512u64;
    for pass in 0..6u64 {
        for i in 0..vector_lines * 4 {
            trace.push(
                Access::read(i * 8)
                    .with_temporal(true)
                    .with_spatial(true)
                    .with_gap(2),
            );
            let s = pass * stream_lines * 4 + i;
            trace.push(
                Access::read(0x10_0000 + s * 8)
                    .with_spatial(true)
                    .with_gap(2),
            );
        }
    }
    let mut soft = SoftCache::new(SoftCacheConfig::soft());
    let mut stand = StandardCache::new(CacheGeometry::standard(), MemoryModel::default());
    soft.run(&trace);
    stand.run(&trace);
    assert!(
        (soft.metrics().miss_ratio()) < stand.metrics().miss_ratio() * 0.7,
        "soft {:.4} vs standard {:.4}",
        soft.metrics().miss_ratio(),
        stand.metrics().miss_ratio()
    );
    assert!(soft.metrics().bounces > 0);
}
