//! Property-based tests over the core invariants: metric conservation
//! for every engine on arbitrary tagged traces, virtual-line block
//! arithmetic, fill-buffer FIFO discipline and write-buffer timing.
//!
//! The build environment is offline, so instead of `proptest` these use
//! a hand-rolled generator seeded from [`SplitMix64`]: each property runs
//! over `CASES` independently generated inputs, and every assertion
//! message carries the case seed so a failure is reproducible.

use software_assisted_caches::core::{
    virtual_block, AssistCache, FillBuffer, FillSlot, SoftCache, SoftCacheConfig,
};
use software_assisted_caches::simcache::{
    classify_misses, BypassCache, BypassMode, CacheGeometry, CacheSim, ColumnAssociativeCache,
    MemoryModel, Metrics, NextLinePrefetchCache, StandardCache, StreamBufferCache, VictimCache,
    WriteBuffer,
};
use software_assisted_caches::trace::rng::SplitMix64;
use software_assisted_caches::trace::{Access, Trace};

const CASES: u64 = 64;

/// Runs `f` once per case with a per-case generator; the seed is passed
/// through so failures can name the offending case.
fn for_each_case(f: impl Fn(u64, &mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x5AC0_0000 + case);
        f(case, &mut rng);
    }
}

/// An arbitrary tagged access over a bounded footprint.
fn gen_access(rng: &mut SplitMix64) -> Access {
    let addr = rng.below(4096) * 8;
    let a = if rng.chance(0.5) {
        Access::write(addr)
    } else {
        Access::read(addr)
    };
    a.with_temporal(rng.chance(0.5))
        .with_spatial(rng.chance(0.5))
        .with_gap(1 + rng.below(19) as u32)
}

/// A 1..600 entry trace of arbitrary tagged accesses.
fn gen_trace(rng: &mut SplitMix64) -> Trace {
    let len = 1 + rng.below(599);
    (0..len).map(|_| gen_access(rng)).collect()
}

/// Invariants every engine must maintain on any input.
fn check_conservation(case: u64, m: &Metrics, trace: &Trace) {
    assert_eq!(m.refs as usize, trace.len(), "case {case}");
    assert_eq!(m.reads + m.writes, m.refs, "case {case}");
    assert_eq!(
        m.main_hits + m.aux_hits + m.misses + m.bypasses,
        m.refs,
        "case {case}"
    );
    assert!(
        m.amat() >= 1.0,
        "case {case}: an access costs at least one cycle: {m}"
    );
    let ratio = m.miss_ratio();
    assert!((0.0..=1.0).contains(&ratio), "case {case}");
    assert!(m.hit_ratio() + ratio <= 1.0 + 1e-9, "case {case}");
    // Useful prefetches never exceed issued prefetches.
    assert!(m.useful_prefetches <= m.prefetches, "case {case}");
}

#[test]
fn standard_cache_conserves_references() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        let mut c = StandardCache::new(CacheGeometry::new(1024, 32, 1), MemoryModel::default());
        c.run(&trace);
        check_conservation(case, c.metrics(), &trace);
    });
}

#[test]
fn victim_cache_conserves_references() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        let mut c = VictimCache::new(CacheGeometry::new(1024, 32, 1), MemoryModel::default(), 4);
        c.run(&trace);
        check_conservation(case, c.metrics(), &trace);
    });
}

#[test]
fn bypass_cache_conserves_references() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        for mode in [BypassMode::Plain, BypassMode::Buffered { lines: 2 }] {
            let mut c = BypassCache::new(
                CacheGeometry::new(1024, 32, 1),
                MemoryModel::default(),
                mode,
            );
            c.run(&trace);
            check_conservation(case, c.metrics(), &trace);
        }
    });
}

#[test]
fn prefetch_cache_conserves_references() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        let mut c =
            NextLinePrefetchCache::new(CacheGeometry::new(1024, 32, 1), MemoryModel::default(), 4);
        c.run(&trace);
        check_conservation(case, c.metrics(), &trace);
    });
}

#[test]
fn related_designs_conserve_references() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        let geom = CacheGeometry::new(1024, 32, 1);
        let mem = MemoryModel::default();
        {
            let mut c = StreamBufferCache::new(geom, mem, 2, 4);
            c.run(&trace);
            check_conservation(case, c.metrics(), &trace);
        }
        {
            let mut c = ColumnAssociativeCache::new(geom, mem);
            c.run(&trace);
            check_conservation(case, c.metrics(), &trace);
        }
        {
            let mut c = AssistCache::new(geom, mem, 4);
            c.run(&trace);
            check_conservation(case, c.metrics(), &trace);
        }
    });
}

#[test]
fn miss_classification_is_bounded_and_consistent() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        let geom = CacheGeometry::new(1024, 32, 1);
        let c = classify_misses(&trace, geom);
        assert_eq!(c.refs as usize, trace.len(), "case {case}");
        assert!(c.total() as usize <= trace.len(), "case {case}");
        // The real organization can never beat the compulsory floor.
        assert!(c.total() >= c.compulsory, "case {case}");
        // And the standard engine's miss count matches the classifier's.
        let mut sim = StandardCache::new(geom, MemoryModel::default());
        sim.run(&trace);
        assert_eq!(sim.metrics().misses, c.total(), "case {case}");
    });
}

#[test]
fn soft_cache_conserves_references() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        let cfg = SoftCacheConfig::soft()
            .with_geometry(CacheGeometry::new(1024, 32, 1))
            .with_bounce_lines(4)
            .with_prefetch(true);
        let mut c = SoftCache::new(cfg);
        c.run(&trace);
        check_conservation(case, c.metrics(), &trace);
    });
}

#[test]
fn soft_cache_conserves_on_all_paper_configs() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        for cfg in [
            SoftCacheConfig::soft(),
            SoftCacheConfig::temporal_only(),
            SoftCacheConfig::spatial_only(),
            SoftCacheConfig::simplified_assoc(2),
        ] {
            let mut c = SoftCache::new(cfg);
            c.run(&trace);
            check_conservation(case, c.metrics(), &trace);
        }
    });
}

#[test]
fn engines_are_deterministic() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        let run = |trace: &Trace| {
            let mut c = SoftCache::new(SoftCacheConfig::soft().with_prefetch(true));
            c.run(trace);
            *c.metrics()
        };
        assert_eq!(run(&trace), run(&trace), "case {case}");
    });
}

#[test]
fn virtual_block_contains_and_aligns() {
    for_each_case(|case, rng| {
        let line = rng.below(100_000);
        let span_pow = rng.below(4) as u32;
        let ls = 32u64;
        let vls = ls << span_pow;
        let block = virtual_block(line, ls, vls);
        assert!(block.contains(&line), "case {case}");
        assert_eq!(block.end - block.start, vls / ls, "case {case}");
        assert_eq!(block.start % (vls / ls), 0, "case {case}");
    });
}

#[test]
fn virtual_blocks_tile_the_address_space() {
    // Every line maps into exactly one virtual block: two lines share a
    // block iff they agree on the block index, and blocks never overlap.
    for_each_case(|case, rng| {
        let ls = 16u64 << rng.below(3); // 16, 32 or 64-byte lines
        let vls = ls << rng.below(4);
        let a = rng.below(10_000);
        let b = rng.below(10_000);
        let ba = virtual_block(a, ls, vls);
        let bb = virtual_block(b, ls, vls);
        let span = vls / ls;
        assert_eq!(ba == bb, a / span == b / span, "case {case}");
        assert!(
            ba == bb || ba.end <= bb.start || bb.end <= ba.start,
            "case {case}: distinct blocks {ba:?} and {bb:?} overlap"
        );
    });
}

#[test]
fn fill_buffer_preserves_fifo_order_against_a_model() {
    // Random push/pop interleavings must match a queue model exactly and
    // never exceed the declared capacity.
    for_each_case(|case, rng| {
        let capacity = 1 + rng.index(8);
        let mut fifo = FillBuffer::new(capacity);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut pushed = 0u64;
        let mut peak = 0usize;
        for step in 0..200 {
            let push = fifo.len() < capacity && (fifo.is_empty() || rng.chance(0.5));
            if push {
                let line = rng.below(1 << 20);
                fifo.push(FillSlot {
                    line,
                    set: line % 256,
                    way: 0,
                });
                model.push_back(line);
                pushed += 1;
                peak = peak.max(model.len());
            } else {
                let got = fifo.pop().map(|s| s.line);
                assert_eq!(got, model.pop_front(), "case {case} step {step}");
            }
            assert_eq!(fifo.len(), model.len(), "case {case} step {step}");
            assert!(fifo.len() <= capacity, "case {case} step {step}");
            assert_eq!(fifo.is_empty(), model.is_empty(), "case {case} step {step}");
        }
        assert_eq!(fifo.total_pushes(), pushed, "case {case}");
        assert_eq!(fifo.peak(), peak, "case {case}");
        // Draining returns the remaining lines in push order.
        while let Some(slot) = fifo.pop() {
            assert_eq!(Some(slot.line), model.pop_front(), "case {case} drain");
        }
        assert!(model.is_empty(), "case {case}");
    });
}

#[test]
fn fill_buffer_cancel_removes_exactly_one_matching_entry() {
    for_each_case(|case, rng| {
        let mut fifo = FillBuffer::new(8);
        // Distinct lines so cancellation is unambiguous.
        let mut lines: Vec<u64> = Vec::new();
        for i in 0..(1 + rng.below(7)) {
            let line = i * 1000 + rng.below(999);
            fifo.push(FillSlot {
                line,
                set: line % 256,
                way: 0,
            });
            lines.push(line);
        }
        let victim = rng.index(lines.len());
        assert!(fifo.cancel(lines[victim]), "case {case}");
        assert!(
            !fifo.cancel(u64::MAX),
            "case {case}: missing lines do not match"
        );
        lines.remove(victim);
        let drained: Vec<u64> = std::iter::from_fn(|| fifo.pop().map(|s| s.line)).collect();
        assert_eq!(drained, lines, "case {case}: order of survivors preserved");
    });
}

#[test]
fn write_buffer_never_goes_back_in_time() {
    for_each_case(|case, rng| {
        let mut wb = WriteBuffer::new(4, 3);
        let mut now = 0u64;
        let pushes = 1 + rng.below(39);
        for _ in 0..pushes {
            now += rng.below(50);
            let stall = wb.push(now);
            // A stall is bounded by the full drain of the buffer.
            assert!(stall <= 4 * 3, "case {case}");
        }
    });
}

#[test]
fn hit_plus_miss_cycles_bound_amat() {
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        // AMAT is bounded above by the cost of missing on every access
        // with the largest virtual line plus worst-case stalls.
        let mut c = SoftCache::new(SoftCacheConfig::soft().with_virtual_line(256));
        c.run(&trace);
        let worst = 20.0 + (8.0 * 32.0) / 16.0 + 16.0; // fetch + generous stall slack
        assert!(c.metrics().amat() <= worst, "case {case}: {}", c.metrics());
    });
}

/// Separate regression: zero-length traces are harmless.
#[test]
fn empty_trace_is_fine_everywhere() {
    let empty = Trace::new("empty");
    let mut soft = SoftCache::new(SoftCacheConfig::soft());
    soft.run(&empty);
    assert_eq!(soft.metrics().refs, 0);
    assert_eq!(soft.metrics().amat(), 0.0);
}

/// Reconciliation contract between the telemetry probe and the engine
/// counters, asserted per case: every event total must account for
/// exactly one `Metrics` bump, the 3C causes must partition the misses,
/// and the reuse / miss-interval sketches must cover every reference.
fn check_probe_reconciles(
    case: u64,
    engine: &str,
    m: &Metrics,
    p: &software_assisted_caches::obs::TracingProbe,
) {
    let o = p.counts();
    let pairs = [
        ("refs", o.refs, m.refs),
        ("reads", o.reads, m.reads),
        ("writes", o.writes, m.writes),
        ("misses", o.misses, m.misses),
        ("bounces", o.bounces, m.bounces),
        ("swaps", o.swaps, m.swaps),
        ("prefetches", o.prefetch_issues, m.prefetches),
        ("useful_prefetches", o.prefetch_uses, m.useful_prefetches),
        ("writebacks", o.writebacks, m.writebacks),
        (
            "lines_fetched",
            o.line_fills + o.prefetch_issues,
            m.lines_fetched,
        ),
    ];
    for (name, events, counter) in pairs {
        assert_eq!(events, counter, "case {case} {engine}: {name}");
    }
    let (comp, cap, conf) = p.causes();
    assert_eq!(comp + cap + conf, m.misses, "case {case} {engine}: causes");
    assert_eq!(
        p.reuse_cold() + p.reuse().total(),
        m.refs,
        "case {case} {engine}: reuse sketch coverage"
    );
    assert_eq!(
        p.miss_intervals().total(),
        m.misses,
        "case {case} {engine}: miss intervals"
    );
}

/// Property: the tracing probe reconciles exactly with the metrics of
/// both probed engines on arbitrary tagged traces, random geometries and
/// random soft-cache features, across chunk boundaries and a final flush.
#[test]
fn tracing_probe_reconciles_with_metrics_on_random_traces() {
    use software_assisted_caches::obs::{ObsConfig, TracingProbe};
    for_each_case(|case, rng| {
        let trace = gen_trace(rng);
        let geom = CacheGeometry::new(
            [4096u64, 8192][rng.index(2)],
            [32u64, 64][rng.index(2)],
            [1u32, 2][rng.index(2)],
        );
        let mem = MemoryModel::new(5 + rng.below(30), [8u64, 16][rng.index(2)]);
        let obs = ObsConfig::for_cache(geom.lines(), geom.sets(), geom.line_bytes())
            .with_ring(64, 1 + rng.below(7));
        let chunk = 13 + rng.below(80) as usize;

        let mut std = StandardCache::with_probe(geom, mem, TracingProbe::new(obs));
        for c in trace.as_slice().chunks(chunk) {
            std.run_chunk(c);
        }
        std.invalidate_all(); // exercises the Flush event path
        std.probe_mut().finish();
        let m = *std.metrics();
        check_probe_reconciles(case, "standard", &m, std.probe());

        let cfg = SoftCacheConfig::soft()
            .with_geometry(geom)
            .with_memory(mem)
            .with_virtual_line(geom.line_bytes() * (1 << rng.below(3)))
            .with_prefetch(rng.chance(0.5));
        let mut soft = SoftCache::with_probe(cfg, TracingProbe::new(obs));
        for c in trace.as_slice().chunks(chunk) {
            soft.run_chunk(c);
        }
        soft.invalidate_all();
        soft.probe_mut().finish();
        let m = *soft.metrics();
        check_probe_reconciles(case, "soft", &m, soft.probe());
    });
}
