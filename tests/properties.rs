//! Property-based tests (proptest) over the core invariants: metric
//! conservation for every engine on arbitrary tagged traces, virtual-line
//! block arithmetic, and write-buffer timing.

use proptest::prelude::*;
use software_assisted_caches::core::{virtual_block, AssistCache, SoftCache, SoftCacheConfig};
use software_assisted_caches::simcache::{
    classify_misses, BypassCache, BypassMode, CacheGeometry, CacheSim, ColumnAssociativeCache,
    MemoryModel, Metrics, NextLinePrefetchCache, StandardCache, StreamBufferCache, VictimCache,
    WriteBuffer,
};
use software_assisted_caches::trace::{Access, Trace};

/// Strategy: an arbitrary tagged access over a bounded footprint.
fn access_strategy() -> impl Strategy<Value = Access> {
    (
        0u64..4096,    // line-ish address space (words)
        any::<bool>(), // write?
        any::<bool>(), // temporal
        any::<bool>(), // spatial
        1u32..20,      // gap
    )
        .prop_map(|(word, write, temporal, spatial, gap)| {
            let addr = word * 8;
            let a = if write {
                Access::write(addr)
            } else {
                Access::read(addr)
            };
            a.with_temporal(temporal)
                .with_spatial(spatial)
                .with_gap(gap)
        })
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(access_strategy(), 1..600).prop_map(|v| v.into_iter().collect())
}

/// Invariants every engine must maintain on any input.
fn check_conservation(m: &Metrics, trace: &Trace) {
    assert_eq!(m.refs as usize, trace.len());
    assert_eq!(m.reads + m.writes, m.refs);
    assert_eq!(m.main_hits + m.aux_hits + m.misses + m.bypasses, m.refs);
    assert!(m.amat() >= 1.0, "an access costs at least one cycle: {m}");
    let ratio = m.miss_ratio();
    assert!((0.0..=1.0).contains(&ratio));
    assert!(m.hit_ratio() + ratio <= 1.0 + 1e-9);
    // Useful prefetches never exceed issued prefetches.
    assert!(m.useful_prefetches <= m.prefetches);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn standard_cache_conserves_references(trace in trace_strategy()) {
        let mut c = StandardCache::new(CacheGeometry::new(1024, 32, 1), MemoryModel::default());
        c.run(&trace);
        check_conservation(c.metrics(), &trace);
    }

    #[test]
    fn victim_cache_conserves_references(trace in trace_strategy()) {
        let mut c = VictimCache::new(CacheGeometry::new(1024, 32, 1), MemoryModel::default(), 4);
        c.run(&trace);
        check_conservation(c.metrics(), &trace);
    }

    #[test]
    fn bypass_cache_conserves_references(trace in trace_strategy()) {
        for mode in [BypassMode::Plain, BypassMode::Buffered { lines: 2 }] {
            let mut c = BypassCache::new(CacheGeometry::new(1024, 32, 1), MemoryModel::default(), mode);
            c.run(&trace);
            check_conservation(c.metrics(), &trace);
        }
    }

    #[test]
    fn prefetch_cache_conserves_references(trace in trace_strategy()) {
        let mut c = NextLinePrefetchCache::new(
            CacheGeometry::new(1024, 32, 1),
            MemoryModel::default(),
            4,
        );
        c.run(&trace);
        check_conservation(c.metrics(), &trace);
    }

    #[test]
    fn related_designs_conserve_references(trace in trace_strategy()) {
        let geom = CacheGeometry::new(1024, 32, 1);
        let mem = MemoryModel::default();
        {
            let mut c = StreamBufferCache::new(geom, mem, 2, 4);
            c.run(&trace);
            check_conservation(c.metrics(), &trace);
        }
        {
            let mut c = ColumnAssociativeCache::new(geom, mem);
            c.run(&trace);
            check_conservation(c.metrics(), &trace);
        }
        {
            let mut c = AssistCache::new(geom, mem, 4);
            c.run(&trace);
            check_conservation(c.metrics(), &trace);
        }
    }

    #[test]
    fn miss_classification_is_bounded_and_consistent(trace in trace_strategy()) {
        let geom = CacheGeometry::new(1024, 32, 1);
        let c = classify_misses(&trace, geom);
        prop_assert_eq!(c.refs as usize, trace.len());
        prop_assert!(c.total() as usize <= trace.len());
        prop_assert!(c.compulsory <= c.total() || c.conflict == 0);
        // The real organization can never beat the compulsory floor.
        prop_assert!(c.total() >= c.compulsory);
        // And the standard engine's miss count matches the classifier's.
        let mut sim = StandardCache::new(geom, MemoryModel::default());
        sim.run(&trace);
        prop_assert_eq!(sim.metrics().misses, c.total());
    }

    #[test]
    fn soft_cache_conserves_references(trace in trace_strategy()) {
        let cfg = SoftCacheConfig::soft()
            .with_geometry(CacheGeometry::new(1024, 32, 1))
            .with_bounce_lines(4)
            .with_prefetch(true);
        let mut c = SoftCache::new(cfg);
        c.run(&trace);
        check_conservation(c.metrics(), &trace);
    }

    #[test]
    fn soft_cache_conserves_on_all_paper_configs(trace in trace_strategy()) {
        for cfg in [
            SoftCacheConfig::soft(),
            SoftCacheConfig::temporal_only(),
            SoftCacheConfig::spatial_only(),
            SoftCacheConfig::simplified_assoc(2),
        ] {
            let mut c = SoftCache::new(cfg);
            c.run(&trace);
            check_conservation(c.metrics(), &trace);
        }
    }

    #[test]
    fn engines_are_deterministic(trace in trace_strategy()) {
        let run = |trace: &Trace| {
            let mut c = SoftCache::new(SoftCacheConfig::soft().with_prefetch(true));
            c.run(trace);
            *c.metrics()
        };
        prop_assert_eq!(run(&trace), run(&trace));
    }

    #[test]
    fn virtual_block_contains_and_aligns(line in 0u64..100_000, span_pow in 0u32..4) {
        let ls = 32u64;
        let vls = ls << span_pow;
        let block = virtual_block(line, ls, vls);
        prop_assert!(block.contains(&line));
        prop_assert_eq!(block.end - block.start, vls / ls);
        prop_assert_eq!(block.start % (vls / ls), 0);
    }

    #[test]
    fn write_buffer_never_goes_back_in_time(pushes in prop::collection::vec(0u64..50, 1..40)) {
        let mut wb = WriteBuffer::new(4, 3);
        let mut now = 0u64;
        for dt in pushes {
            now += dt;
            let stall = wb.push(now);
            // A stall is bounded by the full drain of the buffer.
            prop_assert!(stall <= 4 * 3);
        }
    }

    #[test]
    fn hit_plus_miss_cycles_bound_amat(trace in trace_strategy()) {
        // AMAT is bounded above by the cost of missing on every access
        // with the largest virtual line plus worst-case stalls.
        let mut c = SoftCache::new(SoftCacheConfig::soft().with_virtual_line(256));
        c.run(&trace);
        let worst = 20.0 + (8.0 * 32.0) / 16.0 + 16.0; // fetch + generous stall slack
        prop_assert!(c.metrics().amat() <= worst, "{}", c.metrics());
    }
}

/// Separate (non-proptest) regression: zero-length traces are harmless.
#[test]
fn empty_trace_is_fine_everywhere() {
    let empty = Trace::new("empty");
    let mut soft = SoftCache::new(SoftCacheConfig::soft());
    soft.run(&empty);
    assert_eq!(soft.metrics().refs, 0);
    assert_eq!(soft.metrics().amat(), 0.0);
}
