//! Wire-format torture tests for the two binary trace formats.
//!
//! Three families:
//!
//! * **Round-trip properties** — every benchmark workload survives
//!   `SACT -> SAC2 -> decode` exactly, and the committed golden SAC2
//!   fixture decodes to the committed golden text trace (so the wire
//!   format itself is frozen, not just the codec pair).
//! * **Fuzz-style robustness** — seeded `SplitMix64` generators feed
//!   truncated, bit-flipped and garbage streams to both decoders. Every
//!   outcome must be a clean [`ReadError`] or a correct trace — never a
//!   panic, an allocation blow-up, or a silently wrong length.
//! * **Cross-format confusion** — a header of one format stapled to the
//!   body of the other must be rejected, not misdecoded.

use software_assisted_caches::trace::io::{
    read_any, read_binary, read_binary2, write_binary, write_binary2, ChunkSource, ChunkedReader,
    ReadError, Sact2Reader, TraceReader,
};
use software_assisted_caches::trace::rng::SplitMix64;
use software_assisted_caches::trace::{io as trace_io, Trace};
use software_assisted_caches::workloads;

/// Decodes `bytes` through every reader entry point; panics only if a
/// decoder panics (the property under test), returns how many decoded.
fn decode_all_entry_points(bytes: &[u8]) -> Vec<Result<usize, ReadError>> {
    vec![
        read_binary(bytes).map(|t| t.len()),
        read_binary2(bytes).map(|t| t.len()),
        read_any(bytes).map(|t| t.len()),
        // The chunked paths exercise the streaming state machines.
        drain(ChunkedReader::with_chunk_size(bytes, 17)),
        drain(Sact2Reader::with_chunk_size(bytes, 17)),
        drain(TraceReader::with_chunk_size(bytes, 17)),
    ]
}

fn drain<S: ChunkSource>(r: Result<S, ReadError>) -> Result<usize, ReadError> {
    let mut r = r?;
    let mut n = 0usize;
    while let Some(chunk) = r.next_chunk()? {
        n += chunk.len();
        // A decoder must never yield more than the header announced.
        assert!(n as u64 <= r.total(), "decoded past the announced count");
    }
    Ok(n)
}

#[test]
fn every_workload_round_trips_through_both_formats() {
    for program in workloads::benchset_small() {
        let trace = program.trace_default();
        let mut v1 = Vec::new();
        write_binary(&trace, &mut v1).unwrap();

        // SACT -> SAC2 the way sact-convert does it: streamed.
        let reader = TraceReader::new(&v1[..]).unwrap();
        let mut v2 = Vec::new();
        {
            let mut enc =
                trace_io::Sact2Writer::new(&mut v2, reader.name(), reader.total()).unwrap();
            let mut src = TraceReader::new(&v1[..]).unwrap();
            while let Some(chunk) = src.next_chunk().unwrap() {
                for a in chunk {
                    enc.push(a).unwrap();
                }
            }
            enc.finish().unwrap();
        }
        let back = read_binary2(&v2[..]).unwrap();
        assert_eq!(back, trace, "{} altered by SACT->SAC2", trace.name());

        // And the materialized writer agrees with the streamed one.
        let mut v2b = Vec::new();
        write_binary2(&trace, &mut v2b).unwrap();
        assert_eq!(
            v2,
            v2b,
            "{}: streamed and materialized SAC2 differ",
            trace.name()
        );

        assert!(
            v2.len() < v1.len(),
            "{}: SAC2 ({}) not smaller than SACT ({})",
            trace.name(),
            v2.len(),
            v1.len()
        );
        let _ = reader.format();
    }
}

/// The committed fixture freezes the SAC2 wire format: if the encoder
/// ever changes its byte output, this fails even though round-trip
/// tests still pass. Regenerate (deliberately!) with
/// `cargo test --test trace_format regenerate -- --ignored`.
#[test]
fn golden_sact2_fixture_decodes_to_the_golden_trace() {
    let golden = golden_text_trace();
    let bytes: &[u8] = include_bytes!("data/golden.sact2");
    let decoded = read_any(bytes).unwrap();
    assert_eq!(decoded, golden);

    // And the current encoder still produces these exact bytes.
    let mut reenc = Vec::new();
    write_binary2(&golden, &mut reenc).unwrap();
    assert_eq!(
        reenc, bytes,
        "SAC2 encoder output drifted from the committed fixture"
    );
}

fn golden_text_trace() -> Trace {
    let text = include_str!("data/golden.trace");
    trace_io::read_text(text.as_bytes()).expect("golden trace parses")
}

#[test]
#[ignore = "writes tests/data/golden.sact2; run only to regenerate the fixture"]
fn regenerate_golden_sact2_fixture() {
    let golden = golden_text_trace();
    let mut bytes = Vec::new();
    write_binary2(&golden, &mut bytes).unwrap();
    std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden.sact2"),
        bytes,
    )
    .unwrap();
}

fn enc_sact(t: &Trace, v: &mut Vec<u8>) -> std::io::Result<()> {
    write_binary(t, v)
}

fn enc_sact2(t: &Trace, v: &mut Vec<u8>) -> std::io::Result<()> {
    write_binary2(t, v)
}

fn fuzz_trace(rng: &mut SplitMix64, len: usize) -> Trace {
    use software_assisted_caches::trace::Access;
    let mut t = Trace::new("fuzz");
    for _ in 0..len {
        let addr = rng.next_u64() >> (rng.next_u64() % 40);
        let a = if rng.next_u64().is_multiple_of(3) {
            Access::write(addr)
        } else {
            Access::read(addr)
        };
        t.push(
            a.with_temporal(rng.next_u64().is_multiple_of(2))
                .with_spatial(rng.next_u64().is_multiple_of(4))
                .with_spatial_level((rng.next_u64() % 4) as u8)
                .with_gap((rng.next_u64() % 70000) as u32)
                .with_instr(rng.next_u64() as u32),
        );
    }
    t
}

#[test]
fn truncated_streams_error_cleanly_in_both_formats() {
    let mut rng = SplitMix64::seed_from_u64(0x5AC7_0001);
    let t = fuzz_trace(&mut rng, 300);
    for write in [enc_sact, enc_sact2] {
        let mut buf = Vec::new();
        write(&t, &mut buf).unwrap();
        for _ in 0..200 {
            let cut = (rng.next_u64() as usize) % buf.len();
            for n in decode_all_entry_points(&buf[..cut]).into_iter().flatten() {
                // A cut inside the header region can still look like a
                // shorter valid stream only if it decodes to nothing
                // more than the data actually present.
                assert!(n <= t.len());
            }
        }
    }
}

#[test]
fn bit_flipped_streams_never_panic_or_overrun() {
    let mut rng = SplitMix64::seed_from_u64(0x5AC7_0002);
    let t = fuzz_trace(&mut rng, 300);
    for write in [enc_sact, enc_sact2] {
        let mut clean = Vec::new();
        write(&t, &mut clean).unwrap();
        for _ in 0..300 {
            let mut buf = clean.clone();
            // Flip 1..=8 random bits anywhere in the stream.
            for _ in 0..=(rng.next_u64() % 8) {
                let byte = (rng.next_u64() as usize) % buf.len();
                buf[byte] ^= 1 << (rng.next_u64() % 8);
            }
            for res in decode_all_entry_points(&buf) {
                // Either a clean error or a decode bounded by the
                // announced count (asserted inside drain); a flip in the
                // payload may legitimately produce a different trace.
                let _ = res;
            }
        }
    }
}

#[test]
fn random_garbage_streams_never_panic() {
    let mut rng = SplitMix64::seed_from_u64(0x5AC7_0003);
    for _ in 0..300 {
        let len = (rng.next_u64() % 256) as usize;
        let mut buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Half the time, graft a valid magic on the front so the fuzz
        // reaches past the magic check.
        match rng.next_u64() % 4 {
            0 => drop(buf.splice(0..0, *b"SACT")),
            1 => drop(buf.splice(0..0, *b"SAC2")),
            _ => {}
        }
        for res in decode_all_entry_points(&buf) {
            let _ = res;
        }
    }
}

#[test]
fn cross_format_headers_are_rejected() {
    let mut rng = SplitMix64::seed_from_u64(0x5AC7_0004);
    let t = fuzz_trace(&mut rng, 50);
    let (mut v1, mut v2) = (Vec::new(), Vec::new());
    write_binary(&t, &mut v1).unwrap();
    write_binary2(&t, &mut v2).unwrap();

    // The format-specific readers refuse the other magic outright.
    assert!(matches!(read_binary(&v2[..]), Err(ReadError::BadHeader(_))));
    assert!(matches!(
        read_binary2(&v1[..]),
        Err(ReadError::BadHeader(_))
    ));

    // A forged magic stapled onto the other format's body is
    // indistinguishable from data without a checksum, so the only hard
    // guarantees are: no panic, no decode past the announced count (both
    // asserted by decode_all_entry_points), and that the sniffing reader
    // routes on the forged magic, not the body.
    let mut confused = v2.clone();
    confused[..4].copy_from_slice(b"SACT");
    for res in decode_all_entry_points(&confused) {
        let _ = res;
    }
    assert_eq!(TraceReader::new(&confused[..]).unwrap().format(), "SACT");
    let mut confused = v1.clone();
    confused[..4].copy_from_slice(b"SAC2");
    for res in decode_all_entry_points(&confused) {
        let _ = res;
    }
    assert_eq!(TraceReader::new(&confused[..]).unwrap().format(), "SAC2");
}

#[test]
fn sact2_header_count_overflow_is_rejected_without_allocation() {
    // A syntactically valid SAC2 header announcing u64::MAX entries with
    // an empty body: the reader must fail on the first run, not allocate.
    let mut buf = Vec::new();
    buf.extend_from_slice(b"SAC2");
    buf.extend_from_slice(&1u32.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    let err = read_binary2(&buf[..]).unwrap_err();
    assert!(matches!(err, ReadError::BadEntry(_) | ReadError::Io(_)));
}
