//! End-to-end invariants of the multi-core coherent memory system.
//!
//! Four families, mirroring the coherence design notes in DESIGN.md §16:
//!
//! 1. **SWMR fuzz** — on seeded-random multi-CPU traces, the
//!    single-writer/multiple-reader invariant holds after *every* access
//!    (at most one owner per line; an M or E copy is the sole cached
//!    copy), under MESI and Dragon alike.
//! 2. **Reconciliation** — the per-CPU [`Metrics`] blocks merge exactly
//!    into the global block, reference for reference and cycle for
//!    cycle.
//! 3. **False-sharing ping-pong** — a 2-CPU trace whose CPUs write
//!    disjoint words of the same line shows an invalidation ping-pong
//!    (classified ~100% false sharing) that the same references run on
//!    1 CPU do not exhibit at all.
//! 4. **Write-buffer drain ordering under snooping** — a dirty line
//!    pending in a core's write buffer is visible to a remote BusRd that
//!    races the drain (forwarded at cache-to-cache cost), and invisible
//!    one cycle after the drain completes.
//!
//! The build environment is offline, so instead of `proptest` the fuzz
//! uses the hand-rolled [`SplitMix64`] generator; every assertion
//! message carries the case seed so a failure is reproducible.

use software_assisted_caches::simcache::{
    CacheGeometry, CoherentSystem, Dragon, MemoryModel, Mesi, Metrics, SNOOP_CYCLES,
};
use software_assisted_caches::trace::rng::SplitMix64;
use software_assisted_caches::trace::{interleave_round_robin, Access, Trace, MAX_CPUS};
use software_assisted_caches::workloads::sharing;

/// A seeded pseudo-random stream over `lines` cache lines' worth of
/// addresses, mixed reads/writes with small issue gaps.
fn random_stream(seed: u64, len: usize, lines: u64) -> Trace {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut t = Trace::new("fuzz");
    for _ in 0..len {
        let addr = rng.below(lines * 4) * 8;
        let a = if rng.chance(0.4) {
            Access::write(addr)
        } else {
            Access::read(addr)
        };
        t.push(a.with_gap(rng.below(3) as u32));
    }
    t
}

/// A multi-CPU interleave of `cpus` independently seeded streams.
fn random_multi(seed: u64, cpus: usize, len_per_cpu: usize, lines: u64) -> Trace {
    let streams: Vec<Trace> = (0..cpus as u64)
        .map(|c| random_stream(seed ^ (c << 32) | c, len_per_cpu, lines))
        .collect();
    interleave_round_robin("fuzz-multi", &streams)
}

/// A small, conflict-prone geometry: 8 sets, direct-mapped, 32 B lines.
fn tight_geom() -> CacheGeometry {
    CacheGeometry::new(256, 32, 1)
}

#[test]
fn swmr_holds_at_every_step_mesi() {
    for case in 0..24u64 {
        let cpus = 2 + (case % 3) as usize; // 2..=4
        let trace = random_multi(0x5AC0_0000 + case, cpus, 400, 8);
        let mut sys: CoherentSystem<Mesi> =
            CoherentSystem::new(tight_geom(), MemoryModel::default(), cpus);
        for (i, a) in trace.iter().enumerate() {
            sys.access(a);
            sys.check_swmr()
                .unwrap_or_else(|e| panic!("case {case}, after access {i}: {e}"));
        }
    }
}

#[test]
fn swmr_holds_at_every_step_dragon() {
    for case in 0..12u64 {
        let cpus = 2 + (case % 3) as usize;
        let trace = random_multi(0xD7A6_0000 + case, cpus, 400, 8);
        let mut sys: CoherentSystem<Dragon> =
            CoherentSystem::new(tight_geom(), MemoryModel::default(), cpus);
        for (i, a) in trace.iter().enumerate() {
            sys.access(a);
            sys.check_swmr()
                .unwrap_or_else(|e| panic!("case {case}, after access {i}: {e}"));
        }
    }
}

#[test]
fn per_cpu_outcome_totals_reconcile_exactly_with_global_metrics() {
    for case in 0..16u64 {
        let cpus = 2 + (case % 3) as usize;
        let trace = random_multi(0xBEEF_0000 + case, cpus, 1500, 64);
        let mut sys: CoherentSystem<Mesi> =
            CoherentSystem::new(CacheGeometry::standard(), MemoryModel::default(), cpus);
        sys.run(&trace);
        let merged = Metrics::merged((0..cpus).map(|c| sys.core_metrics(c)));
        assert_eq!(
            merged,
            *sys.metrics(),
            "case {case}: per-CPU metrics must merge exactly into the global block"
        );
        sys.metrics()
            .check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        // Every CPU saw its own share of the interleave, nothing more.
        for c in 0..cpus {
            assert_eq!(
                sys.core_metrics(c).refs,
                1500,
                "case {case}: cpu {c} ref count"
            );
        }
    }
}

#[test]
fn max_cpus_interleave_runs_clean() {
    let trace = random_multi(0xCAFE, MAX_CPUS, 1000, 32);
    let mut sys: CoherentSystem<Mesi> =
        CoherentSystem::new(CacheGeometry::standard(), MemoryModel::default(), MAX_CPUS);
    sys.run(&trace);
    sys.check_swmr().unwrap();
    assert_eq!(sys.metrics().refs, (MAX_CPUS * 1000) as u64);
}

#[test]
fn false_sharing_ping_pong_absent_on_one_cpu() {
    // Two CPUs write disjoint words of the same lines.
    let trace = sharing::false_sharing(2, 2_000, 4);
    let mut two: CoherentSystem<Mesi> =
        CoherentSystem::new(CacheGeometry::standard(), MemoryModel::default(), 2);
    two.run(&trace);
    two.check_swmr().unwrap();
    let t2 = two.stats().totals();
    assert!(
        t2.invalidations_received > 1_000,
        "2-CPU run must ping-pong: {t2:?}"
    );
    assert!(
        t2.false_sharing_invalidations as f64 >= 0.99 * t2.invalidations_received as f64,
        "disjoint words must classify as false sharing: {t2:?}"
    );

    // The same references, all issued from CPU 0: no coherence activity
    // and (after the cold fills) no misses at all.
    let mut solo_trace = Trace::new("false_sharing_solo");
    for a in &trace {
        solo_trace.push(a.with_cpu(0));
    }
    let mut one: CoherentSystem<Mesi> =
        CoherentSystem::new(CacheGeometry::standard(), MemoryModel::default(), 1);
    one.run(&solo_trace);
    one.check_swmr().unwrap();
    let t1 = one.stats().totals();
    assert_eq!(t1.invalidations_received, 0, "1 CPU cannot invalidate");
    assert_eq!(t1.upgrades + t1.c2c_fills + t1.updates, 0, "{t1:?}");
    assert!(
        one.metrics().misses < two.metrics().misses / 100,
        "solo run keeps the lines resident: {} vs {}",
        one.metrics().misses,
        two.metrics().misses
    );
    // Dragon on the 2-CPU trace: updates instead of ping-pong.
    let mut dragon: CoherentSystem<Dragon> =
        CoherentSystem::new(CacheGeometry::standard(), MemoryModel::default(), 2);
    dragon.run(&trace);
    dragon.check_swmr().unwrap();
    let td = dragon.stats().totals();
    assert_eq!(td.invalidations_received, 0, "Dragon never invalidates");
    assert!(td.updates > 1_000, "{td:?}");
}

#[test]
fn pending_buffered_write_is_visible_to_remote_busrd_before_drain() {
    // Zero memory latency makes the fill exactly as long as the write
    // buffer's retire window, so a back-to-back remote read (gap 0)
    // arrives on the drain's final beat.
    let mem = MemoryModel::new(0, 16);
    let geom = tight_geom();
    let mut sys: CoherentSystem<Mesi> = CoherentSystem::new(geom, mem, 2);
    sys.access(&Access::write(0).with_cpu(0)); // line 0 dirty in cpu 0
    sys.access(&Access::read(256).with_cpu(0)); // conflict: evicts line 0 → wb
    assert_eq!(
        sys.metrics().writebacks,
        1,
        "eviction went through the buffer"
    );

    let before = sys.metrics().mem_cycles;
    sys.access(&Access::read(0).with_cpu(1).with_gap(0));
    let stats = sys.stats().totals();
    assert_eq!(
        stats.wb_forwards, 1,
        "racing read must forward, not re-fetch"
    );
    assert_eq!(
        sys.metrics().mem_cycles - before,
        SNOOP_CYCLES + mem.transfer_cycles(geom.line_bytes()),
        "forward is priced as a cache-to-cache fill, not a memory fill"
    );
    sys.check_swmr().unwrap();

    // One cycle later the buffer has drained to memory: the same race
    // now misses the window and pays the full memory fill.
    let mut sys: CoherentSystem<Mesi> = CoherentSystem::new(geom, mem, 2);
    sys.access(&Access::write(0).with_cpu(0));
    sys.access(&Access::read(256).with_cpu(0));
    let before = sys.metrics().mem_cycles;
    sys.access(&Access::read(0).with_cpu(1).with_gap(1));
    assert_eq!(
        sys.stats().totals().wb_forwards,
        0,
        "drained entry must not forward"
    );
    assert_eq!(
        sys.metrics().mem_cycles - before,
        mem.latency() + mem.transfer_cycles(geom.line_bytes()),
        "post-drain read pays the memory fill"
    );
}

#[test]
fn producer_consumer_hands_off_cache_to_cache() {
    let trace = sharing::producer_consumer(2, 500, 4);
    let mut sys: CoherentSystem<Mesi> =
        CoherentSystem::new(CacheGeometry::standard(), MemoryModel::default(), 2);
    sys.run(&trace);
    sys.check_swmr().unwrap();
    let t = sys.stats().totals();
    // Every consumer refill after the first round comes from the
    // producer's cache, and the sharing is true (same words).
    assert!(t.c2c_fills > 400, "{t:?}");
    assert_eq!(
        t.false_sharing_invalidations, 0,
        "producer/consumer shares the very words it writes: {t:?}"
    );
}
