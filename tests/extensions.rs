//! Integration tests for the paper's proposed extensions and the §5
//! related designs, pinning the shapes recorded in EXPERIMENTS.md.

use software_assisted_caches::core::{AssistCache, SoftCacheConfig};
use software_assisted_caches::experiments::{figures, Config, Suite};
use software_assisted_caches::simcache::{CacheGeometry, CacheSim, MemoryModel};

/// §3.2 variable-length virtual lines: with leveled traces, the variable
/// scheme must match or beat the fixed 64-byte default on most codes —
/// it picks the larger fill only where the compiler saw a long stream.
#[test]
fn variable_vlines_match_or_beat_the_default() {
    let leveled = Suite::small_leveled();
    let t = figures::ext_variable_vlines(&leveled);
    let mut wins_or_ties = 0;
    for (name, _) in t.rows() {
        let fixed = t.get(name, "fixed 64B").unwrap();
        let var = t.get(name, "variable").unwrap();
        if var <= fixed * 1.03 {
            wins_or_ties += 1;
        }
    }
    assert!(wins_or_ties >= 6, "variable vlines regressed too often");
}

/// Variable virtual lines never fetch more than the 8-line maximum and
/// never activate on unleveled traces.
#[test]
fn variable_vlines_are_inert_without_levels() {
    let plain = Suite::small();
    let trace = plain.trace("MV").unwrap();
    let fixed = Config::soft().run(trace);
    let var = Config::Soft(SoftCacheConfig::soft().with_variable_vlines(true)).run(trace);
    assert_eq!(fixed, var, "level-0 traces must behave identically");
}

/// §5 related designs: the column-associative cache fixes conflicts (it
/// beats plain direct-mapped) but not pollution (the software-assisted
/// cache stays ahead on the pollution-bound codes).
#[test]
fn column_associative_fixes_conflicts_not_pollution() {
    let suite = Suite::small();
    let t = figures::ext_related_designs(&suite);
    let mut beats_standard = 0;
    for (name, _) in t.rows() {
        let stand = t.get(name, "Stand.").unwrap();
        let col = t.get(name, "ColAssoc").unwrap();
        if col <= stand * 1.02 {
            beats_standard += 1;
        }
    }
    assert!(beats_standard >= 6, "rehash slots should absorb conflicts");
    // Pollution-bound codes: the bounce-back design stays clearly ahead.
    for name in ["DYF", "MV"] {
        let col = t.get(name, "ColAssoc").unwrap();
        let soft = t.get(name, "Soft.").unwrap();
        assert!(
            soft < col * 0.95,
            "{name}: soft {soft:.3} vs colassoc {col:.3}"
        );
    }
}

/// The assist cache must not fall apart on untagged codes (its
/// promote-by-default policy covers data the compiler could not tag).
#[test]
fn assist_cache_handles_untagged_codes() {
    let suite = Suite::small();
    let t = figures::ext_related_designs(&suite);
    let stand = t.get("MDG", "Stand.").unwrap();
    let assist = t.get("MDG", "Assist").unwrap();
    assert!(
        assist <= stand * 1.05,
        "untagged MDG: assist {assist:.3} vs standard {stand:.3}"
    );
}

/// Stream buffers excel on stream codes but pay in traffic — the
/// software-assisted cache fetches strictly fewer words on the streaming
/// kernels.
#[test]
fn stream_buffers_pay_with_traffic() {
    let suite = Suite::small();
    let amat = figures::ext_related_designs(&suite);
    let traffic = figures::ext_related_traffic(&suite);
    // They win AMAT on at least the pure-stream codes...
    let sb = amat.get("LIV", "StreamBuf").unwrap();
    let soft = amat.get("LIV", "Soft.").unwrap();
    assert!(sb < soft, "stream buffers should win pure streams");
    // ...but fetch more words than the soft cache on most codes.
    let mut soft_cheaper = 0;
    for (name, _) in traffic.rows() {
        let sb = traffic.get(name, "StreamBuf").unwrap();
        let soft = traffic.get(name, "Soft.").unwrap();
        if soft < sb {
            soft_cheaper += 1;
        }
    }
    assert!(soft_cheaper >= 6, "soft traffic should usually be lower");
}

/// The assist cache is deterministic and conserves references (sanity
/// for the new engine).
#[test]
fn assist_cache_conserves_references() {
    let suite = Suite::small();
    let trace = suite.trace("TRF").unwrap();
    let mut c = AssistCache::new(CacheGeometry::standard(), MemoryModel::default(), 16);
    c.run(trace);
    let m = c.metrics();
    assert_eq!(m.refs as usize, trace.len());
    assert_eq!(m.main_hits + m.aux_hits + m.misses, m.refs);
}

/// Context switches (full invalidations) must not erase the
/// software-assisted advantage: most of its gains are stream misses a
/// flush does not multiply.
#[test]
fn soft_advantage_survives_context_switches() {
    let suite = Suite::small();
    let t = figures::ext_context_switch(&suite);
    for col in t.columns().to_vec() {
        let stand = t.get("Stand.", &col).unwrap();
        let soft = t.get("Soft.", &col).unwrap();
        assert!(
            soft < stand * 0.85,
            "{col}: soft {soft:.3} vs standard {stand:.3}"
        );
    }
}

/// §4.4 prefetch distance: degree 1 (the paper's base progressive
/// prefetch) must help at every latency; the deeper degrees are recorded
/// in EXPERIMENTS.md as a negative result in our implementation.
#[test]
fn progressive_prefetch_helps_at_every_latency() {
    let suite = Suite::small();
    let t = figures::ext_prefetch_distance(&suite);
    for (row, values) in t.rows() {
        let base = values[0]; // no prefetch
        let d1 = values[1];
        assert!(d1 < base, "{row}: degree-1 prefetch should help");
    }
}
