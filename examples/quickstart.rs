//! Quickstart: run the paper's matrix-vector multiply through a standard
//! cache and the software-assisted cache, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use software_assisted_caches::core::{SoftCache, SoftCacheConfig};
use software_assisted_caches::simcache::{CacheGeometry, CacheSim, MemoryModel, StandardCache};
use software_assisted_caches::workloads::mv;

fn main() {
    // 1. Build a workload as a loop nest and trace it. The tracer runs
    //    the paper's locality analysis and attaches the temporal/spatial
    //    tag bits to every reference.
    let program = mv::program(mv::DEFAULT_N);
    let trace = program.trace_default();
    println!("{program}");
    println!("trace: {} references\n", trace.len());

    // 2. The paper's Standard baseline: 8 KB, 32-byte lines, 1-way,
    //    20-cycle memory latency, 16-byte bus.
    let mut standard = StandardCache::new(CacheGeometry::standard(), MemoryModel::default());
    standard.run(&trace);

    // 3. The software-assisted cache: 64-byte virtual lines + a 256-byte
    //    bounce-back cache, driven by the tags.
    let mut soft = SoftCache::new(SoftCacheConfig::soft());
    soft.run(&trace);

    let (s, m) = (standard.metrics(), soft.metrics());
    println!("standard cache:        {s}");
    println!("software-assisted:     {m}");
    println!();
    println!(
        "AMAT       {:.3} -> {:.3}  ({:.0}% better)",
        s.amat(),
        m.amat(),
        100.0 * (1.0 - m.amat() / s.amat())
    );
    println!(
        "miss ratio {:.4} -> {:.4}  ({:.0}% of misses removed)",
        s.miss_ratio(),
        m.miss_ratio(),
        m.misses_removed_vs(s)
    );
    println!(
        "traffic    {:.3} -> {:.3} words/ref",
        s.traffic_ratio(),
        m.traffic_ratio()
    );
    println!(
        "{} lines bounced back into the main cache kept X resident.",
        m.bounces
    );
}
