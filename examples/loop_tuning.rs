//! Loop interchange meets software assistance.
//!
//! The paper blames part of the Perfect Club's modest gains on "badly
//! ordered loops, inducing non stride-one references, and preventing the
//! use of virtual lines" (§3.2). This example builds such a loop, fixes
//! it with the `loopir` interchange transformation, and shows how the
//! tags — and the cache — respond: the analysis re-derives the tags for
//! the transformed code automatically, and the virtual-line mechanism
//! only switches on once the reference is stride-1.
//!
//! ```text
//! cargo run --release --example loop_tuning
//! ```

use software_assisted_caches::experiments::Config;
use software_assisted_caches::loopir::{idx, Program};

fn build(
    n: i64,
) -> (
    Program,
    software_assisted_caches::loopir::VarId,
    software_assisted_caches::loopir::VarId,
) {
    // A column-major sweep written row-first: A(i,j) with j innermost
    // strides by the leading dimension — the classic dusty-deck mistake.
    let mut p = Program::new("badly-ordered");
    let i = p.var("i");
    let j = p.var("j");
    let a = p.array("A", &[n, n]);
    // A is exactly 2 MB: without padding, A(i,j) and B(i,j) would alias
    // to the same cache set on every iteration and the interference
    // would drown the stride story this example is about.
    let _pad = p.array("PAD", &[4]);
    let b = p.array("B", &[n, n]);
    p.body(|s| {
        s.for_(i, 0, n, |s| {
            s.for_(j, 0, n, |s| {
                s.read(a, &[idx(i), idx(j)]);
                s.write(b, &[idx(i), idx(j)]);
            });
        });
    });
    (p, i, j)
}

fn report(label: &str, p: &Program) {
    let tags = p.analyze();
    let trace = p.trace_default();
    let stand = Config::standard().run(&trace);
    let soft = Config::soft().run(&trace);
    println!(
        "{label:<22} spatial tags: A={} B={}   AMAT stand {:.3}  soft {:.3}",
        u8::from(tags[0].spatial),
        u8::from(tags[1].spatial),
        stand.amat(),
        soft.amat()
    );
}

fn main() {
    let (bad, i, j) = build(512);
    println!("{}", bad.to_pseudocode());
    report("as written (j inner)", &bad);

    let good = bad.interchanged(i, j).expect("perfect nest");
    report("interchanged (i inner)", &good);

    println!();
    println!("Interchange turns both references stride-1: the analysis tags");
    println!("them spatial, virtual lines halve the misses, and both caches");
    println!("speed up — but the software-assisted one compounds the wins.");
}
