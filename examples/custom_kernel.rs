//! Building your own kernel: the loop-nest IR, the tagging analysis, and
//! the simulator — end to end on the paper's Figure 5 loop.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use software_assisted_caches::core::{SoftCache, SoftCacheConfig};
use software_assisted_caches::loopir::{idx, shift, Program};
use software_assisted_caches::simcache::CacheSim;
use software_assisted_caches::trace::stats::TagFractions;

fn main() {
    // The instrumented loop of the paper's Figure 5:
    //   DO I: DO J:
    //     Y(I) = Y(I) + (A(I,J) + B(J,I) + B(J,I+1)) * (X(J) + X(J))
    let n = 256i64;
    let mut p = Program::new("fig5");
    let i = p.var("I");
    let j = p.var("J");
    let a = p.array("A", &[n, n]);
    let b = p.array("B", &[n, n + 1]);
    let x = p.array("X", &[n]);
    let y = p.array("Y", &[n]);
    let mut labels = Vec::new();
    p.body(|s| {
        s.for_(i, 0, n, |s| {
            s.for_(j, 0, n, |s| {
                labels.push(("A(I,J)   read ", s.read(a, &[idx(i), idx(j)])));
                labels.push(("B(J,I)   read ", s.read(b, &[idx(j), idx(i)])));
                labels.push(("B(J,I+1) read ", s.read(b, &[idx(j), shift(i, 1)])));
                labels.push(("X(J)     read ", s.read(x, &[idx(j)])));
                labels.push(("Y(I)     read ", s.read(y, &[idx(i)])));
                labels.push(("Y(I)     write", s.write(y, &[idx(i)])));
            });
        });
    });

    // The analysis reproduces the trace() calls of the paper's Figure 5.
    let tags = p.analyze();
    println!("reference        temporal  spatial   (paper's Figure 5 bits)");
    for (label, id) in &labels {
        let t = tags[id.index()];
        println!(
            "{label}       {}        {}",
            u8::from(t.temporal),
            u8::from(t.spatial)
        );
    }

    let trace = p.trace_default();
    let f = TagFractions::of(&trace);
    println!(
        "\n{} references; temporal fraction {:.2}, spatial fraction {:.2}",
        trace.len(),
        f.temporal_fraction(),
        f.spatial_fraction()
    );

    let mut cache = SoftCache::new(SoftCacheConfig::soft());
    cache.run(&trace);
    println!("software-assisted cache: {}", cache.metrics());
}
