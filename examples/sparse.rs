//! Scarce locality in sparse matrix-vector multiply (§4.1).
//!
//! The compiler cannot tag `X(Index(j2))` — the subscript is indirect —
//! so the paper drives the cache with *user directives*: `X` is declared
//! temporal, and the `A`/`Index` streams stay spatial-only. This example
//! shows what the directive is worth by running the same kernel with and
//! without it.
//!
//! ```text
//! cargo run --release --example sparse
//! ```

use software_assisted_caches::experiments::Config;
use software_assisted_caches::loopir::{idx, indirect, shift, Bound, Program};
use software_assisted_caches::workloads::spmv;

/// Rebuilds the SpMV kernel with the X directive stripped (what the
/// compiler alone would produce).
fn without_directive(params: spmv::Params) -> Program {
    // Build the directive version to reuse its structure, then rebuild
    // the body with a plain (untaggable) indirect read.
    let reference = spmv::program(params);
    let colptr: Vec<i64> = reference.table_values_at(0).to_vec();
    let rowidx: Vec<i64> = reference.table_values_at(1).to_vec();
    let total_nnz = rowidx.len() as i64;

    let mut p = Program::new("SpMV-no-directive");
    let j1 = p.var("j1");
    let j2 = p.var("j2");
    let a = p.array("A", &[total_nnz]);
    let index = p.array("Index", &[total_nnz]);
    let x = p.array("X", &[params.rows]);
    let y = p.array("Y", &[params.cols]);
    let d = p.table(colptr);
    let rows = p.table(rowidx);
    p.body(|s| {
        s.for_(j1, 0, params.cols, |s| {
            s.read(y, &[idx(j1)]);
            s.for_(
                j2,
                Bound::Table {
                    table: d,
                    index: idx(j1),
                },
                Bound::Table {
                    table: d,
                    index: shift(j1, 1),
                },
                |s| {
                    s.read(a, &[idx(j2)]);
                    s.read(index, &[idx(j2)]);
                    s.read_subs(x, vec![indirect(rows, idx(j2))]);
                },
            );
            s.write(y, &[idx(j1)]);
        });
    });
    p
}

fn main() {
    let params = spmv::Params::default();
    let tagged = spmv::program(params).trace_default();
    let untagged = without_directive(params).trace_default();

    println!(
        "sparse matrix-vector multiply ({} references)\n",
        tagged.len()
    );
    println!("{:<34} {:>7} {:>11}", "configuration", "AMAT", "miss ratio");
    for (name, trace) in [
        ("soft + X directive (paper)", &tagged),
        ("soft, compiler tags only", &untagged),
    ] {
        let m = Config::soft().run(trace);
        println!("{:<34} {:>7.3} {:>11.4}", name, m.amat(), m.miss_ratio());
    }
    let m = Config::standard().run(&tagged);
    println!(
        "{:<34} {:>7.3} {:>11.4}",
        "standard cache",
        m.amat(),
        m.miss_ratio()
    );
    println!();
    println!("Without the directive the bounce-back cache cannot tell X from");
    println!("the A/Index streams, and the scarce reuse of X is lost.");
}
