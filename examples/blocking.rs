//! Blocking under software control (§4.2, Figure 11a).
//!
//! Data-locality algorithms pick block sizes assuming the cache behaves
//! as a local memory; interference and pollution force much smaller
//! blocks in practice. Software control removes the pollution, so the
//! usable block sizes grow back toward the theoretical optimum.
//!
//! ```text
//! cargo run --release --example blocking
//! ```

use software_assisted_caches::experiments::Config;
use software_assisted_caches::workloads::blocked::{self, Params, FIG11A_BLOCKS};

fn main() {
    println!(
        "blocked matrix-vector multiply, N = {}\n",
        Params::default().n
    );
    println!("{:>8} {:>12} {:>12}", "block", "AMAT stand.", "AMAT soft");

    let mut best = [(0i64, f64::MAX); 2];
    for &b in &FIG11A_BLOCKS {
        let trace = blocked::program(Params {
            n: Params::default().n,
            block: b,
        })
        .trace_default();
        let stand = Config::standard().run(&trace).amat();
        let soft = Config::soft().run(&trace).amat();
        println!("{b:>8} {stand:>12.3} {soft:>12.3}");
        if stand < best[0].1 {
            best[0] = (b, stand);
        }
        if soft < best[1].1 {
            best[1] = (b, soft);
        }
    }
    println!();
    println!(
        "best block: standard = {} (AMAT {:.3}), soft = {} (AMAT {:.3})",
        best[0].0, best[0].1, best[1].0, best[1].1
    );
    println!("Software control tolerates much larger blocks: the X block is");
    println!("tagged temporal and survives the A stream, so blocking can be");
    println!("chosen close to the local-memory optimum.");
}
