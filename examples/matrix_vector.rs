//! The paper's §2.2 walkthrough: why matrix-vector multiply defeats a
//! plain cache, a victim cache, and bypassing — and how the two
//! software-assisted mechanisms split the work.
//!
//! `A` streams (spatial locality, no reuse) and flushes `X` (reused every
//! outer iteration) before its reuse arrives. Virtual lines halve `A`'s
//! compulsory misses; the bounce-back cache keeps `X` resident by
//! bouncing its evicted lines back.
//!
//! ```text
//! cargo run --release --example matrix_vector
//! ```

use software_assisted_caches::core::SoftCacheConfig;
use software_assisted_caches::experiments::Config;
use software_assisted_caches::simcache::{BypassMode, CacheGeometry, MemoryModel};
use software_assisted_caches::workloads::mv;

fn main() {
    let trace = mv::program(mv::DEFAULT_N).trace_default();
    let geom = CacheGeometry::standard();
    let mem = MemoryModel::default();

    let configs: Vec<(&str, Config)> = vec![
        ("standard", Config::standard()),
        (
            "bypass (plain)",
            Config::Bypass {
                geom,
                mem,
                mode: BypassMode::Plain,
            },
        ),
        (
            "bypass (buffered)",
            Config::Bypass {
                geom,
                mem,
                mode: BypassMode::Buffered { lines: 2 },
            },
        ),
        ("standard + victim cache", Config::standard_victim()),
        (
            "soft, temporal only",
            Config::Soft(SoftCacheConfig::temporal_only()),
        ),
        (
            "soft, spatial only",
            Config::Soft(SoftCacheConfig::spatial_only()),
        ),
        ("soft, full mechanism", Config::soft()),
    ];

    println!("matrix-vector multiply, N = {}\n", mv::DEFAULT_N);
    println!(
        "{:<26} {:>7} {:>11} {:>11} {:>10}",
        "configuration", "AMAT", "miss ratio", "words/ref", "BB hits"
    );
    for (name, cfg) in configs {
        let m = cfg.run(&trace);
        println!(
            "{:<26} {:>7.3} {:>11.4} {:>11.3} {:>10}",
            name,
            m.amat(),
            m.miss_ratio(),
            m.traffic_ratio(),
            m.aux_hits
        );
    }
    println!();
    println!("Bypassing loses A's spatial locality; the victim cache is too");
    println!("small to hold X until its reuse; the bounce-back cache keeps X");
    println!("resident and virtual lines halve A's compulsory misses.");
}
