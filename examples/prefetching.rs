//! Software-assisted prefetching (§4.4, Figure 12).
//!
//! The design's prefetch support falls out of the existing hardware: the
//! bounce-back cache doubles as the prefetch buffer, and the spatial tags
//! drive the prefetch decision, avoiding the wrong predictions of
//! tag-blind hardware prefetchers. Prefetching is *progressive* — a hit
//! on a prefetched line in the bounce-back cache swaps it in and fetches
//! the next physical line — so burst requests never happen.
//!
//! ```text
//! cargo run --release --example prefetching
//! ```

use software_assisted_caches::core::SoftCacheConfig;
use software_assisted_caches::experiments::Config;
use software_assisted_caches::simcache::{CacheGeometry, MemoryModel};
use software_assisted_caches::workloads::mv;

fn main() {
    let trace = mv::program(mv::DEFAULT_N).trace_default();
    println!(
        "matrix-vector multiply, {} references, latency sweep\n",
        trace.len()
    );
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>12} {:>14}",
        "latency", "standard", "stand+HWpf", "soft", "soft+pf", "useful pf (%)"
    );
    for lat in [10u64, 20, 30, 40] {
        let mem = MemoryModel::default().with_latency(lat);
        let geom = CacheGeometry::standard();
        let stand = Config::Standard { geom, mem }.run(&trace);
        let hw = Config::HwPrefetch {
            geom,
            mem,
            lines: 8,
        }
        .run(&trace);
        let soft = Config::Soft(SoftCacheConfig::soft().with_latency(lat)).run(&trace);
        let soft_pf = Config::Soft(
            SoftCacheConfig::soft()
                .with_latency(lat)
                .with_prefetch(true),
        )
        .run(&trace);
        let useful = if soft_pf.prefetches == 0 {
            0.0
        } else {
            100.0 * soft_pf.useful_prefetches as f64 / soft_pf.prefetches as f64
        };
        println!(
            "{:>8} {:>10.3} {:>12.3} {:>10.3} {:>12.3} {:>14.1}",
            lat,
            stand.amat(),
            hw.amat(),
            soft.amat(),
            soft_pf.amat(),
            useful,
        );
    }
    println!();
    println!("The spatial tags keep the prediction accuracy high (useful");
    println!("prefetch fraction), and the progressive chain keeps one line in");
    println!("flight instead of bursting, so the advantage grows with latency.");
}
